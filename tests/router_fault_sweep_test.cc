// Network fault sweep — the cluster sibling of fault_sweep_test (which
// sweeps storage I/O). A 3-shard loopback cluster of real CubeServers runs
// a scatter query once in COUNTING mode to enumerate every socket operation
// the session performs (connect/write/read on the client side, accept/read/
// write on the server side), then replays the query failing each operation
// with each fault kind and asserts the only observable outcomes are
//
//   - a response bit-identical to the single-node server (the fault was
//     healed by a write-loop retry, a failover, or landed after the
//     exchange), or
//   - a clean ERR whose status is failover-class (IOError or
//     DeadlineExceeded) — never a hang, a crash, or a garbled relation.
//
// Transient faults (once=true) must ALWAYS heal: one socket-level glitch
// against a 2-replica shard never reaches the client. Sticky faults model
// dead peers and may exhaust replicas into a clean ERR.
//
// The PARTIAL phase drops whole shards (sticky faults keyed to the shard's
// endpoint) under --allow-partial semantics and proves the degraded answer
// "OK ... PARTIAL shards=2/3" equals the exact merge of the surviving
// shards — precomputed as leave-one-out references over submaps.
//
// Runs under TSan in CI: the sweep doubles as a race hunt over the hedged
// scatter machinery's failure paths.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/net_fault.h"
#include "engine/cure.h"
#include "gen/datasets.h"
#include "gen/random.h"
#include "gen/zipf.h"
#include "router/router.h"
#include "router/shard_map.h"
#include "serve/cube_server.h"
#include "serve/tcp_server.h"

namespace cure {
namespace {

using engine::BuildCure;
using engine::CureOptions;
using engine::FactInput;
using net::NetFaultKind;
using net::NetFaultPlan;
using net::ScopedNetFaultInjection;
using router::BackendAddress;
using router::CureRouter;
using router::RouterOptions;
using router::ShardMap;
using serve::CubeServer;
using serve::CubeServerOptions;
using serve::TcpLineServer;
using serve::TcpServerOptions;

// Zipf-skewed hierarchical dataset with all four distributive aggregates —
// identical in shape to router_test's so per-shard partials genuinely
// overlap on hot groups and a garbled merge cannot checksum-collide.
gen::Dataset MakeZipfHier(uint64_t tuples, uint64_t seed) {
  gen::Dataset ds;
  std::vector<schema::Dimension> dims;
  dims.push_back(schema::Dimension::Linear("A", {24, 6, 2}));
  dims.push_back(schema::Dimension::Linear("B", {9, 3}));
  dims.push_back(schema::Dimension::Flat("C", 5));
  auto schema = schema::CubeSchema::Create(
      std::move(dims), 1,
      {{schema::AggFn::kSum, 0, "s"},
       {schema::AggFn::kCount, 0, "c"},
       {schema::AggFn::kMin, 0, "lo"},
       {schema::AggFn::kMax, 0, "hi"}});
  EXPECT_TRUE(schema.ok());
  ds.schema = std::move(schema).value();
  ds.table = schema::FactTable(3, 1);
  gen::Rng rng(seed);
  gen::ZipfSampler za(24, 1.1), zb(9, 0.9), zc(5, 0.7);
  for (uint64_t t = 0; t < tuples; ++t) {
    const uint32_t row[3] = {za.Sample(&rng), zb.Sample(&rng), zc.Sample(&rng)};
    const int64_t m = static_cast<int64_t>(rng.NextRange(1000));
    ds.table.AppendRow(row, &m);
  }
  return ds;
}

std::vector<schema::FactTable> SplitTable(const schema::FactTable& table,
                                          int parts) {
  std::vector<schema::FactTable> out;
  const uint64_t rows = table.num_rows();
  std::vector<uint32_t> dims(table.num_dims());
  std::vector<int64_t> measures(table.num_measures());
  for (int k = 0; k < parts; ++k) {
    schema::FactTable part(table.num_dims(), table.num_measures());
    const uint64_t begin = rows * k / parts;
    const uint64_t end = rows * (k + 1) / parts;
    for (uint64_t row = begin; row < end; ++row) {
      for (int d = 0; d < table.num_dims(); ++d) dims[d] = table.dim(d, row);
      for (int m = 0; m < table.num_measures(); ++m) {
        measures[m] = table.measure(m, row);
      }
      part.AppendRow(dims.data(), measures.data());
    }
    out.push_back(std::move(part));
  }
  return out;
}

std::unique_ptr<engine::CureCube> BuildCubeFor(
    const schema::CubeSchema& schema, const schema::FactTable& table) {
  FactInput input{.table = &table};
  auto built = BuildCure(schema, input, CureOptions{});
  EXPECT_TRUE(built.ok()) << built.status().ToString();
  return std::move(built).value();
}

/// A response reduced to its provenance-free identity: verdict, row count,
/// checksum token and sorted body rows (trace ids and cache tokens differ
/// legitimately between routers).
struct Fingerprint {
  bool ok = false;
  uint64_t count = 0;
  std::string checksum;
  std::string err_code;  // first token after "ERR"
  std::vector<std::string> rows;

  bool operator==(const Fingerprint& other) const {
    return ok == other.ok && count == other.count &&
           checksum == other.checksum && rows == other.rows;
  }
};

Fingerprint FingerprintOf(const std::string& response) {
  Fingerprint out;
  std::istringstream in(response);
  std::string header;
  EXPECT_TRUE(static_cast<bool>(std::getline(in, header))) << response;
  std::istringstream fields(header);
  std::string verdict;
  fields >> verdict;
  out.ok = verdict == "OK";
  if (!out.ok) {
    fields >> out.err_code;
    return out;
  }
  fields >> out.count >> out.checksum;
  std::string row;
  while (std::getline(in, row)) {
    if (row == ".") break;
    out.rows.push_back(row);
  }
  std::sort(out.rows.begin(), out.rows.end());
  return out;
}

/// Three shards, two replica server stacks each, plus the single-node
/// reference server. Routers are minted FRESH per fault case so breaker and
/// pool state never leaks between sweep points.
struct SweepCluster {
  gen::Dataset ds;
  std::vector<schema::FactTable> parts;
  std::unique_ptr<engine::CureCube> whole_cube;
  std::unique_ptr<CubeServer> whole_server;
  std::unique_ptr<TcpLineServer> whole_tcp;
  std::vector<std::unique_ptr<engine::CureCube>> shard_cubes;
  std::vector<std::vector<std::unique_ptr<CubeServer>>> servers;
  std::vector<std::vector<std::unique_ptr<TcpLineServer>>> tcps;
  ShardMap map;

  explicit SweepCluster(uint64_t tuples = 900, uint64_t seed = 41) {
    ds = MakeZipfHier(tuples, seed);
    whole_cube = BuildCubeFor(ds.schema, ds.table);
    whole_server = MakeServer(whole_cube.get());
    whole_tcp = MakeTcp(whole_server.get());
    parts = SplitTable(ds.table, 3);
    for (const auto& part : parts) {
      shard_cubes.push_back(BuildCubeFor(ds.schema, part));
      servers.emplace_back();
      tcps.emplace_back();
      std::vector<BackendAddress> replicas;
      for (int r = 0; r < 2; ++r) {
        servers.back().push_back(MakeServer(shard_cubes.back().get()));
        tcps.back().push_back(MakeTcp(servers.back().back().get()));
        replicas.push_back({"127.0.0.1", tcps.back().back()->port()});
      }
      map.shards.push_back(std::move(replicas));
    }
  }

  static std::unique_ptr<CubeServer> MakeServer(const engine::CureCube* cube) {
    CubeServerOptions options;
    options.num_threads = 2;
    auto server = CubeServer::Create(cube, options);
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    return std::move(server).value();
  }

  static std::unique_ptr<TcpLineServer> MakeTcp(CubeServer* server) {
    auto tcp = TcpLineServer::Start(server, TcpServerOptions{});
    EXPECT_TRUE(tcp.ok()) << tcp.status().ToString();
    return std::move(tcp).value();
  }

  /// Sweep-tuned options: one scatter thread for a stable op order, fast
  /// backoff, short timeouts so sticky stalls fail in milliseconds.
  static RouterOptions SweepOptions() {
    RouterOptions options;
    options.num_threads = 1;
    options.backend_timeout_seconds = 2.0;
    options.backoff_initial_seconds = 0.001;
    options.backoff_cap_seconds = 0.01;
    options.retry_budget = 3;
    return options;
  }

  std::unique_ptr<CureRouter> MakeRouter(const ShardMap& use_map,
                                         const RouterOptions& options) {
    auto router = CureRouter::Create(&ds.schema, use_map, options);
    EXPECT_TRUE(router.ok()) << router.status().ToString();
    return std::move(router).value();
  }
};

const char kSweepQuery[] = "QUERY A_L1,B_L1";

// Every fault kind the injector speaks, with sleeps shrunk so a sweep of
// hundreds of cases stays inside a CI-friendly budget.
NetFaultPlan PlanFor(NetFaultKind kind, uint64_t index, bool once) {
  NetFaultPlan plan;
  plan.fail_index = index;
  plan.kind = kind;
  plan.once = once;
  plan.delay_seconds = 0.001;
  plan.short_fraction = 0.5;
  return plan;
}

TEST(RouterFaultSweepTest, EveryNetworkOpFailsCleanOrHeals) {
  SweepCluster fx;
  const Fingerprint reference =
      FingerprintOf(fx.whole_tcp->HandleLine(kSweepQuery));
  ASSERT_TRUE(reference.ok);
  ASSERT_GT(reference.count, 0u);

  // Phase 0 — counting mode: fail_index = UINT64_MAX never fires, it only
  // counts the session's matching socket operations.
  uint64_t total_ops = 0;
  {
    ScopedNetFaultInjection scoped(PlanFor(NetFaultKind::kReset, UINT64_MAX,
                                           /*once=*/false));
    auto router = fx.MakeRouter(fx.map, SweepCluster::SweepOptions());
    const Fingerprint counted = FingerprintOf(router->HandleLine(kSweepQuery));
    EXPECT_EQ(counted, reference);
    router.reset();  // drain in-flight attempts before reading the count
    total_ops = scoped.ops_matched();
  }
  ASSERT_GT(total_ops, 6u) << "expected at least connect+write+read per shard";
  SCOPED_TRACE("session performs " + std::to_string(total_ops) +
               " network ops");

  // Phase 1 — transient glitches (once=true). A single socket-level fault
  // against 2-replica shards must NEVER surface: short writes heal in the
  // write loop, delays just slow the exchange, refused/reset/stall fail
  // over to the sibling replica. Bit-identical result required every time.
  const NetFaultKind all_kinds[] = {
      NetFaultKind::kRefused, NetFaultKind::kReset, NetFaultKind::kShortWrite,
      NetFaultKind::kDelay, NetFaultKind::kStall};
  const char* kind_names[] = {"refused", "reset", "shortwrite", "delay",
                              "stall"};
  for (size_t k = 0; k < 5; ++k) {
    for (uint64_t index = 0; index < total_ops; ++index) {
      ScopedNetFaultInjection scoped(
          PlanFor(all_kinds[k], index, /*once=*/true));
      auto router = fx.MakeRouter(fx.map, SweepCluster::SweepOptions());
      const Fingerprint got = FingerprintOf(router->HandleLine(kSweepQuery));
      EXPECT_EQ(got, reference)
          << "transient " << kind_names[k] << " at op " << index
          << (got.ok ? " garbled the relation" : " leaked an ERR to the client");
    }
  }

  // Phase 2 — sticky dead-peer faults. From the failing index on, every
  // matching op fails; the router either dodges it entirely (the index lay
  // beyond this run's op stream) or reports a clean failover-class ERR.
  // Sticky shortwrite/delay never break an exchange, so they must stay
  // bit-identical even when applied forever.
  for (size_t k = 0; k < 5; ++k) {
    const bool lossless = all_kinds[k] == NetFaultKind::kShortWrite ||
                          all_kinds[k] == NetFaultKind::kDelay;
    for (uint64_t index = 0; index < total_ops; ++index) {
      ScopedNetFaultInjection scoped(
          PlanFor(all_kinds[k], index, /*once=*/false));
      auto router = fx.MakeRouter(fx.map, SweepCluster::SweepOptions());
      const Fingerprint got = FingerprintOf(router->HandleLine(kSweepQuery));
      if (lossless || got.ok) {
        EXPECT_EQ(got, reference)
            << "sticky " << kind_names[k] << " at op " << index;
      } else {
        EXPECT_TRUE(got.err_code == "IOError" ||
                    got.err_code == "DeadlineExceeded")
            << "sticky " << kind_names[k] << " at op " << index
            << " produced unclean failure: " << got.err_code;
      }
    }
  }
}

TEST(RouterFaultSweepTest, PartialAnswersEqualSurvivingShardsMerge) {
  SweepCluster fx;
  // One replica per shard: a sticky fault keyed to the replica's port kills
  // the whole shard, which is exactly what PARTIAL is for.
  ShardMap solo;
  for (const auto& shard : fx.map.shards) solo.shards.push_back({shard[0]});

  const std::vector<std::string> workload = {
      "QUERY ALL",
      "QUERY A_L1,B_L1",
      "ICEBERG A_L0,B_L0 3",
      "SLICE A_L0,B_L0 A_L2=0",
  };

  // Leave-one-out references: a fresh fault-free router over the two
  // surviving shards IS the exact degraded answer.
  std::vector<std::vector<Fingerprint>> leave_one_out(solo.num_shards());
  for (int down = 0; down < solo.num_shards(); ++down) {
    ShardMap submap;
    for (int s = 0; s < solo.num_shards(); ++s) {
      if (s != down) submap.shards.push_back(solo.shards[s]);
    }
    auto router = fx.MakeRouter(submap, SweepCluster::SweepOptions());
    for (const std::string& line : workload) {
      leave_one_out[down].push_back(FingerprintOf(router->HandleLine(line)));
      ASSERT_TRUE(leave_one_out[down].back().ok);
    }
  }

  const NetFaultKind shard_killers[] = {
      NetFaultKind::kRefused, NetFaultKind::kReset, NetFaultKind::kStall};
  const char* killer_names[] = {"refused", "reset", "stall"};
  RouterOptions partial_options = SweepCluster::SweepOptions();
  partial_options.allow_partial = true;
  partial_options.retry_budget = 1;
  for (int down = 0; down < solo.num_shards(); ++down) {
    NetFaultPlan plan;
    plan.endpoint_substr = ":" + std::to_string(solo.shards[down][0].port);
    plan.fail_index = 0;
    plan.once = false;
    plan.delay_seconds = 0.001;
    for (size_t k = 0; k < 3; ++k) {
      plan.kind = shard_killers[k];
      ScopedNetFaultInjection scoped(plan);
      auto router = fx.MakeRouter(solo, partial_options);
      for (size_t q = 0; q < workload.size(); ++q) {
        const std::string response = router->HandleLine(workload[q]);
        EXPECT_NE(response.find(" PARTIAL shards=2/3"), std::string::npos)
            << "shard " << down << " down via " << killer_names[k] << ": "
            << response;
        EXPECT_EQ(FingerprintOf(response), leave_one_out[down][q])
            << "degraded answer drifted from the surviving shards' merge "
            << "(shard " << down << " down via " << killer_names[k] << ", "
            << workload[q] << ")";
      }
      EXPECT_GT(router->metrics()->counter("partial_total")->value(), 0u);
    }
  }

  // Strict mode (the default) refuses to degrade: same dead shard, ERR.
  {
    NetFaultPlan plan;
    plan.endpoint_substr = ":" + std::to_string(solo.shards[1][0].port);
    plan.fail_index = 0;
    plan.once = false;
    plan.kind = NetFaultKind::kRefused;
    ScopedNetFaultInjection scoped(plan);
    auto router = fx.MakeRouter(solo, SweepCluster::SweepOptions());
    const Fingerprint got = FingerprintOf(router->HandleLine("QUERY ALL"));
    EXPECT_FALSE(got.ok);
    EXPECT_EQ(got.err_code, "IOError");
  }
}

}  // namespace
}  // namespace cure
