#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <future>
#include <thread>
#include <vector>

namespace cure {
namespace {

TEST(ThreadPoolTest, DefaultThreadCountIsPositive) {
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1);
}

TEST(ThreadPoolTest, DefaultThreadCountHonorsEnvironment) {
  ASSERT_EQ(setenv("CURE_THREADS", "3", 1), 0);
  EXPECT_EQ(ThreadPool::DefaultThreadCount(), 3);
  ASSERT_EQ(setenv("CURE_THREADS", "not-a-number", 1), 0);
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1);  // Falls back to hardware.
  ASSERT_EQ(unsetenv("CURE_THREADS"), 0);
}

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::atomic<int> runs{0};
  std::vector<std::future<Status>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&runs] {
      runs.fetch_add(1);
      return Status::OK();
    }));
  }
  for (std::future<Status>& f : futures) EXPECT_TRUE(f.get().ok());
  EXPECT_EQ(runs.load(), 100);
}

TEST(ThreadPoolTest, SingleWorkerDispatchesInSubmissionOrder) {
  // The FIFO contract the build pipeline's format arbiter depends on: with
  // one worker the execution order must equal the submission order exactly.
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<Status>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.Submit([&order, i] {
      order.push_back(i);  // Single worker: no race.
      return Status::OK();
    }));
  }
  for (std::future<Status>& f : futures) EXPECT_TRUE(f.get().ok());
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolTest, StartedTasksFormPrefixOfSubmissionOrder) {
  // Multi-worker FIFO dispatch: whenever a task starts, every earlier task
  // has already been dispatched (started set is a prefix). Each task waits
  // until all tasks with a smaller index have at least started.
  constexpr int kTasks = 64;
  ThreadPool pool(4);
  std::atomic<int> started{0};
  std::atomic<bool> prefix_violated{false};
  std::vector<std::future<Status>> futures;
  for (int i = 0; i < kTasks; ++i) {
    futures.push_back(pool.Submit([&started, &prefix_violated, i] {
      // Tasks are popped under the queue lock in FIFO order, so by the time
      // task i runs this line, tasks 0..i-1 have been popped. Allow their
      // counter increments a moment to land before checking.
      for (int spin = 0; spin < 10000 && started.load() < i; ++spin) {
        std::this_thread::yield();
      }
      if (started.load() < i) prefix_violated.store(true);
      started.fetch_add(1);
      return Status::OK();
    }));
  }
  for (std::future<Status>& f : futures) EXPECT_TRUE(f.get().ok());
  EXPECT_FALSE(prefix_violated.load());
}

TEST(ThreadPoolTest, ErrorStatusPropagatesThroughFuture) {
  ThreadPool pool(2);
  std::future<Status> ok = pool.Submit([] { return Status::OK(); });
  std::future<Status> bad =
      pool.Submit([] { return Status::Internal("task failed"); });
  EXPECT_TRUE(ok.get().ok());
  Status s = bad.get();
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "task failed");
}

TEST(ThreadPoolTest, ShutdownDrainsPendingTasks) {
  ThreadPool pool(1);
  std::atomic<int> runs{0};
  std::vector<std::future<Status>> futures;
  // Head task blocks the single worker so the rest pile up in the queue.
  futures.push_back(pool.Submit([&runs] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    runs.fetch_add(1);
    return Status::OK();
  }));
  for (int i = 0; i < 20; ++i) {
    futures.push_back(pool.Submit([&runs] {
      runs.fetch_add(1);
      return Status::OK();
    }));
  }
  pool.Shutdown();  // Must run all 21 queued tasks before returning.
  EXPECT_EQ(runs.load(), 21);
  for (std::future<Status>& f : futures) EXPECT_TRUE(f.get().ok());
  pool.Shutdown();  // Idempotent.
}

TEST(ThreadPoolTest, SubmitAfterShutdownFails) {
  ThreadPool pool(2);
  pool.Shutdown();
  std::atomic<bool> ran{false};
  std::future<Status> f = pool.Submit([&ran] {
    ran.store(true);
    return Status::OK();
  });
  Status s = f.get();
  EXPECT_FALSE(s.ok());
  EXPECT_FALSE(ran.load());
}

TEST(ThreadPoolTest, DestructorJoinsWithQueuedWork) {
  std::atomic<int> runs{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&runs] {
        runs.fetch_add(1);
        return Status::OK();
      });
    }
  }  // Destructor implies Shutdown(): drains, then joins.
  EXPECT_EQ(runs.load(), 10);
}

}  // namespace
}  // namespace cure
