// Cluster-wide query profiling and metrics federation (DESIGN.md §17):
// the ClusterProfile text/Chrome-trace codecs, the Prometheus federation
// merge, the slow-query flight recorder, and the PROFILE / METRICS cluster /
// SLOWLOG verbs end-to-end over a real loopback cluster.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/metrics.h"
#include "common/slowlog.h"
#include "common/trace.h"
#include "engine/cure.h"
#include "gen/datasets.h"
#include "gen/random.h"
#include "router/federation.h"
#include "router/profile.h"
#include "router/router.h"
#include "router/shard_map.h"
#include "serve/cube_server.h"
#include "serve/tcp_server.h"

namespace cure {
namespace {

using engine::BuildCure;
using engine::CureOptions;
using engine::FactInput;
using router::AttemptRecord;
using router::BackendAddress;
using router::BackendStageBreakdown;
using router::ClusterProfile;
using router::ClusterProfileToChromeTrace;
using router::CureRouter;
using router::FormatClusterProfile;
using router::MetricsFederator;
using router::ParseBackendProfileLine;
using router::ParseClusterProfile;
using router::RelabelSampleLine;
using router::RouterOptions;
using router::ShardMap;
using router::ShardProfile;
using serve::CubeServer;
using serve::CubeServerOptions;
using serve::TcpLineServer;
using serve::TcpServerOptions;

// ------------------------------------------------------------- flight recorder

TEST(SlowQueryLogTest, RingEvictsOldestAndDumpsNewestFirst) {
  SlowQueryLog log(3);
  EXPECT_EQ(log.Dump(), "total 0 capacity 3\n");
  for (const char* entry : {"a", "b", "c", "d", "e"}) log.Record(entry);
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.total_recorded(), 5u);
  const std::string dump = log.Dump();
  // Newest first, sequence numbers global (not slot indices).
  EXPECT_EQ(dump, "#5 e\n#4 d\n#3 c\ntotal 5 capacity 3\n");
  EXPECT_EQ(dump.find("#1 "), std::string::npos);
}

TEST(SlowQueryLogTest, ZeroCapacityClampsToOne) {
  SlowQueryLog log(0);
  EXPECT_EQ(log.capacity(), 1u);
  log.Record("x");
  log.Record("y");
  EXPECT_EQ(log.size(), 1u);
  EXPECT_NE(log.Dump().find("#2 y"), std::string::npos);
}

// ------------------------------------------------------------ profile codecs

ClusterProfile MakeSampleProfile() {
  ClusterProfile profile;
  profile.trace_id = 4242;
  profile.command = "QUERY A_L1,B_L0";
  profile.result_count = 17;
  profile.result_checksum = 0xdeadbeefcafeull;
  profile.shards_total = 2;
  profile.shards_ok = 2;
  profile.total_us = 900;
  profile.scatter_us = 700;
  profile.merge_us = 150;

  ShardProfile s0;
  s0.shard = 0;
  s0.ok = true;
  s0.attempts.push_back({0, "primary", "won", 5, 640});
  s0.backend_lines.push_back(
      "% profile stage=serve trace=4242 queue_wait_us=3 key_us=1 cache_us=2 "
      "execute_us=500 encode_us=40 total_us=590 cache=MISS version=1");
  s0.backend_lines.push_back("% span name=cure.serve.query ts_us=1000 dur_us=580");
  profile.shards.push_back(std::move(s0));

  ShardProfile s1;
  s1.shard = 1;
  s1.ok = true;
  s1.attempts.push_back({0, "primary", "failover", 6, 200});
  s1.attempts.push_back({1, "retry", "won", 210, 680});
  profile.shards.push_back(std::move(s1));
  return profile;
}

TEST(ClusterProfileTest, FormatParseRoundTrip) {
  const ClusterProfile profile = MakeSampleProfile();
  const std::string text = FormatClusterProfile(profile);
  ClusterProfile parsed;
  ASSERT_TRUE(ParseClusterProfile(text, &parsed)) << text;
  EXPECT_EQ(parsed.trace_id, profile.trace_id);
  EXPECT_EQ(parsed.command, profile.command);
  EXPECT_EQ(parsed.result_count, profile.result_count);
  EXPECT_EQ(parsed.result_checksum, profile.result_checksum);
  EXPECT_EQ(parsed.shards_total, 2);
  EXPECT_EQ(parsed.shards_ok, 2);
  EXPECT_EQ(parsed.total_us, 900);
  EXPECT_EQ(parsed.scatter_us, 700);
  EXPECT_EQ(parsed.merge_us, 150);
  ASSERT_EQ(parsed.shards.size(), 2u);
  EXPECT_TRUE(parsed.shards[0].ok);
  ASSERT_EQ(parsed.shards[0].attempts.size(), 1u);
  EXPECT_EQ(parsed.shards[0].attempts[0].outcome, "won");
  EXPECT_EQ(parsed.shards[0].attempts[0].end_us, 640);
  ASSERT_EQ(parsed.shards[0].backend_lines.size(), 2u);
  EXPECT_EQ(parsed.shards[0].backend_lines[0],
            profile.shards[0].backend_lines[0]);
  ASSERT_EQ(parsed.shards[1].attempts.size(), 2u);
  EXPECT_EQ(parsed.shards[1].attempts[1].kind, "retry");
  EXPECT_EQ(parsed.shards[1].attempts[1].launch_us, 210);

  // Format(Parse(x)) is a fixed point — the tool-side parse loses nothing.
  EXPECT_EQ(FormatClusterProfile(parsed), text);

  // A body without the "cluster" summary line is not a profile.
  EXPECT_FALSE(ParseClusterProfile("command QUERY ALL\n", nullptr));
}

TEST(ClusterProfileTest, ParsesBackendStageBreakdown) {
  const BackendStageBreakdown stages = ParseBackendProfileLine(
      "% profile stage=serve trace=9 queue_wait_us=3 key_us=1 cache_us=2 "
      "execute_us=500 encode_us=40 total_us=590 cache=SEMANTIC version=7");
  ASSERT_TRUE(stages.valid);
  EXPECT_EQ(stages.queue_wait_us, 3);
  EXPECT_EQ(stages.key_us, 1);
  EXPECT_EQ(stages.cache_us, 2);
  EXPECT_EQ(stages.execute_us, 500);
  EXPECT_EQ(stages.encode_us, 40);
  EXPECT_EQ(stages.total_us, 590);
  EXPECT_EQ(stages.cache, "SEMANTIC");
  EXPECT_FALSE(ParseBackendProfileLine("% span name=x ts_us=1 dur_us=2").valid);
  EXPECT_FALSE(ParseBackendProfileLine("1\t2\t3").valid);
}

TEST(ClusterProfileTest, ChromeTraceExportValidates) {
  const std::string json = ClusterProfileToChromeTrace(MakeSampleProfile());
  ChromeTraceSummary summary;
  const Status status = ValidateChromeTrace(json, &summary);
  ASSERT_TRUE(status.ok()) << status.ToString() << "\n" << json;
  EXPECT_TRUE(summary.Contains("cure.router.profile_query")) << json;
  EXPECT_TRUE(summary.Contains("cure.router.scatter"));
  EXPECT_TRUE(summary.Contains("cure.router.merge"));
  // One attempt span per recorded attempt, on per-shard tracks.
  EXPECT_EQ(summary.CompleteCount("cure.router.attempt"), 3u);
  // The winning backend's stage spans are laid out under its shard track.
  EXPECT_TRUE(summary.Contains("cure.serve.execute"));
  EXPECT_TRUE(summary.Contains("cure.serve.encode"));
  // The raw backend tracer span came through re-based.
  EXPECT_TRUE(summary.Contains("cure.serve.query"));
}

// -------------------------------------------------------- buckets wire format

TEST(HistogramWireTest, BucketsLineRoundTripsThroughFederationMerge) {
  LogHistogram original;
  for (int64_t v = 1; v <= 2000; ++v) original.Record(v);
  std::string line;
  AppendHistogramBuckets("cure_serve_query_latency", original, &line);
  ASSERT_EQ(line.rfind("# BUCKETS cure_serve_query_latency ", 0), 0u) << line;

  std::string name;
  LogHistogram::Snapshot snapshot;
  ASSERT_TRUE(ParseHistogramBuckets(line, &name, &snapshot));
  EXPECT_EQ(name, "cure_serve_query_latency");
  const LogHistogram::Snapshot direct = original.TakeSnapshot();
  EXPECT_EQ(snapshot.count, direct.count);
  EXPECT_EQ(snapshot.sum, direct.sum);
  EXPECT_EQ(snapshot.max, direct.max);
  EXPECT_EQ(snapshot.buckets, direct.buckets);

  // Merging the parsed snapshot reproduces the original quantiles exactly —
  // the property that makes cluster percentiles honest.
  LogHistogram merged;
  merged.Merge(snapshot);
  const LogHistogram::Snapshot after = merged.TakeSnapshot();
  EXPECT_EQ(after.p50, direct.p50);
  EXPECT_EQ(after.p95, direct.p95);
  EXPECT_EQ(after.p99, direct.p99);

  // Malformed lines are rejected, not mis-parsed.
  EXPECT_FALSE(ParseHistogramBuckets("# BUCKETS", &name, &snapshot));
  EXPECT_FALSE(ParseHistogramBuckets("cure_x 1", &name, &snapshot));
  EXPECT_FALSE(
      ParseHistogramBuckets("# BUCKETS x sum=1 max=1 999999:1", &name,
                            &snapshot));
}

// ------------------------------------------------------------ federation text

TEST(FederationTest, RelabelsSamplesPreservingExistingLabels) {
  std::string name, out;
  ASSERT_TRUE(RelabelSampleLine("cure_serve_queries_total 5", 2, 1, &name, &out));
  EXPECT_EQ(name, "cure_serve_queries_total");
  EXPECT_EQ(out, "cure_serve_queries_total{shard=\"2\",replica=\"1\"} 5");
  ASSERT_TRUE(RelabelSampleLine("lat{quantile=\"0.99\"} 120", 0, 3, &name, &out));
  EXPECT_EQ(name, "lat");
  EXPECT_EQ(out, "lat{shard=\"0\",replica=\"3\",quantile=\"0.99\"} 120");
  EXPECT_FALSE(RelabelSampleLine("", 0, 0, &name, &out));
  EXPECT_FALSE(RelabelSampleLine("novalue", 0, 0, &name, &out));
  EXPECT_FALSE(RelabelSampleLine("!bad{} 1", 0, 0, &name, &out));
}

TEST(FederationTest, MergesBackendSeriesAndHistograms) {
  LogHistogram lat0, lat1;
  for (int64_t v = 1; v <= 100; ++v) lat0.Record(v);
  for (int64_t v = 1000; v <= 1100; ++v) lat1.Record(v);
  std::string expo0 = "# TYPE cure_serve_queries_total counter\n"
                      "cure_serve_queries_total 10\n";
  AppendHistogramBuckets("cure_serve_query_latency", lat0, &expo0);
  std::string expo1 = "# TYPE cure_serve_queries_total counter\n"
                      "cure_serve_queries_total 32\n";
  AppendHistogramBuckets("cure_serve_query_latency", lat1, &expo1);

  MetricsFederator federator;
  federator.AddBackend(0, 0, expo0);
  federator.AddBackend(1, 0, expo1);
  federator.AddUnreachable(1, 1, "127.0.0.1:7106", "connect: refused");
  EXPECT_EQ(federator.backends_scraped(), 2);
  EXPECT_EQ(federator.backends_failed(), 1);

  const std::string out = federator.Render();
  EXPECT_NE(out.find("# cluster federation: scraped=2 failed=1"),
            std::string::npos)
      << out;
  // Both backends' samples, grouped under one TYPE header, labeled apart.
  EXPECT_NE(out.find("# TYPE cure_serve_queries_total counter"),
            std::string::npos);
  EXPECT_NE(out.find("cure_serve_queries_total{shard=\"0\",replica=\"0\"} 10"),
            std::string::npos);
  EXPECT_NE(out.find("cure_serve_queries_total{shard=\"1\",replica=\"0\"} 32"),
            std::string::npos);
  // The merged histogram renders under the cluster namespace with the
  // bucket-exact combined count, and the quantiles span both backends.
  EXPECT_NE(out.find("cure_cluster_query_latency_count 201"),
            std::string::npos)
      << out;
  // The unreachable backend is reported, not silently dropped.
  EXPECT_NE(out.find("# backend shard=1 replica=1 127.0.0.1:7106 unreachable:"),
            std::string::npos);
}

// --------------------------------------------------------- loopback cluster

gen::Dataset MakeHier(uint64_t tuples, uint64_t seed) {
  gen::Dataset ds;
  std::vector<schema::Dimension> dims;
  dims.push_back(schema::Dimension::Linear("A", {24, 6, 2}));
  dims.push_back(schema::Dimension::Linear("B", {9, 3}));
  auto schema = schema::CubeSchema::Create(
      std::move(dims), 1,
      {{schema::AggFn::kSum, 0, "s"}, {schema::AggFn::kCount, 0, "c"}});
  EXPECT_TRUE(schema.ok());
  ds.schema = std::move(schema).value();
  ds.table = schema::FactTable(2, 1);
  gen::Rng rng(seed);
  for (uint64_t t = 0; t < tuples; ++t) {
    const uint32_t row[2] = {static_cast<uint32_t>(rng.NextRange(24)),
                             static_cast<uint32_t>(rng.NextRange(9))};
    const int64_t m = static_cast<int64_t>(rng.NextRange(100));
    ds.table.AppendRow(row, &m);
  }
  return ds;
}

/// Two shards (contiguous row split) × two replicas of real servers behind
/// a CureRouter — the smallest cluster where attempts, shard tracks and
/// federation labels are all distinguishable.
struct ObservabilityClusterFixture {
  gen::Dataset ds;
  std::vector<schema::FactTable> parts;
  std::vector<std::unique_ptr<engine::CureCube>> cubes;
  std::vector<std::vector<std::unique_ptr<CubeServer>>> servers;
  std::vector<std::vector<std::unique_ptr<TcpLineServer>>> tcps;
  std::unique_ptr<CureRouter> router;

  explicit ObservabilityClusterFixture(RouterOptions options = {}) {
    ds = MakeHier(800, 41);
    const uint64_t rows = ds.table.num_rows();
    for (int k = 0; k < 2; ++k) {
      schema::FactTable part(2, 1);
      const uint64_t begin = rows * k / 2, end = rows * (k + 1) / 2;
      uint32_t dims[2];
      int64_t m;
      for (uint64_t row = begin; row < end; ++row) {
        dims[0] = ds.table.dim(0, row);
        dims[1] = ds.table.dim(1, row);
        m = ds.table.measure(0, row);
        part.AppendRow(dims, &m);
      }
      parts.push_back(std::move(part));
    }
    ShardMap map;
    for (const auto& part : parts) {
      FactInput input{.table = &part};
      auto built = BuildCure(ds.schema, input, CureOptions{});
      EXPECT_TRUE(built.ok()) << built.status().ToString();
      cubes.push_back(std::move(built).value());
      servers.emplace_back();
      tcps.emplace_back();
      std::vector<BackendAddress> replicas;
      CubeServerOptions server_options;
      server_options.cache_bytes = 1 << 20;  // so repeat PROFILEs show HITs
      for (int r = 0; r < 2; ++r) {
        auto server = CubeServer::Create(cubes.back().get(), server_options);
        EXPECT_TRUE(server.ok());
        servers.back().push_back(std::move(server).value());
        auto tcp =
            TcpLineServer::Start(servers.back().back().get(), TcpServerOptions{});
        EXPECT_TRUE(tcp.ok());
        tcps.back().push_back(std::move(tcp).value());
        replicas.push_back({"127.0.0.1", tcps.back().back()->port()});
      }
      map.shards.push_back(std::move(replicas));
    }
    auto created = CureRouter::Create(&ds.schema, map, options);
    EXPECT_TRUE(created.ok()) << created.status().ToString();
    router = std::move(created).value();
  }
};

/// Body of an "OK..."-headed response (between header and "." terminator).
std::string Body(const std::string& response) {
  const size_t nl = response.find('\n');
  EXPECT_NE(nl, std::string::npos) << response;
  std::string body = response.substr(nl + 1);
  if (body.size() >= 2 && body.compare(body.size() - 2, 2, ".\n") == 0) {
    body.resize(body.size() - 2);
  }
  return body;
}

TEST(RouterObservabilityTest, ProfileVerbReturnsClusterProfileEndToEnd) {
  ObservabilityClusterFixture fx;
  const std::string response = fx.router->HandleLine("PROFILE QUERY A_L1,B_L1");
  ASSERT_EQ(response.rfind("OK ", 0), 0u) << response;
  EXPECT_NE(response.find(" PROFILE trace="), std::string::npos) << response;

  // The header carries the wrapped query's real result (count + checksum):
  // profiling must not change the answer.
  const std::string plain = fx.router->HandleLine("QUERY A_L1,B_L1");
  unsigned long long profile_count = 0, plain_count = 0;
  char profile_checksum[32] = {0}, plain_checksum[32] = {0};
  ASSERT_EQ(std::sscanf(response.c_str(), "OK %llu %31s", &profile_count,
                        profile_checksum),
            2);
  ASSERT_EQ(
      std::sscanf(plain.c_str(), "OK %llu %31s", &plain_count, plain_checksum),
      2);
  EXPECT_EQ(profile_count, plain_count);
  EXPECT_STRCASEEQ(profile_checksum, plain_checksum);

  ClusterProfile profile;
  ASSERT_TRUE(ParseClusterProfile(Body(response), &profile)) << response;
  EXPECT_EQ(profile.command, "QUERY A_L1,B_L1");
  EXPECT_EQ(profile.shards_total, 2);
  EXPECT_EQ(profile.shards_ok, 2);
  EXPECT_GT(profile.total_us, 0);
  EXPECT_GT(profile.scatter_us, 0);
  EXPECT_GE(profile.total_us, profile.scatter_us);
  ASSERT_EQ(profile.shards.size(), 2u);
  for (const ShardProfile& shard : profile.shards) {
    EXPECT_TRUE(shard.ok) << "shard " << shard.shard;
    ASSERT_FALSE(shard.attempts.empty());
    // Exactly one attempt won; its end time sits inside the query window.
    int won = 0;
    for (const AttemptRecord& attempt : shard.attempts) {
      if (attempt.outcome == "won") {
        ++won;
        EXPECT_EQ(attempt.kind, "primary");
        EXPECT_GE(attempt.end_us, attempt.launch_us);
        EXPECT_LE(attempt.end_us, profile.total_us);
      }
    }
    EXPECT_EQ(won, 1) << "shard " << shard.shard;
    // Every shard shipped its stage breakdown, and it is consistent with
    // the attempt timing the router measured around the round trip.
    bool found_stages = false;
    for (const std::string& line : shard.backend_lines) {
      const BackendStageBreakdown stages = ParseBackendProfileLine(line);
      if (!stages.valid) continue;
      found_stages = true;
      EXPECT_GE(stages.total_us, 0);
      EXPECT_LE(stages.total_us, profile.total_us);
      EXPECT_EQ(stages.cache, "MISS");
    }
    EXPECT_TRUE(found_stages) << "shard " << shard.shard;
  }

  // The profile exports as a valid Chrome trace with per-shard tracks.
  ChromeTraceSummary summary;
  const std::string json = ClusterProfileToChromeTrace(profile);
  const Status status = ValidateChromeTrace(json, &summary);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_TRUE(summary.Contains("cure.router.profile_query"));
  EXPECT_EQ(summary.CompleteCount("cure.router.attempt"),
            profile.shards[0].attempts.size() +
                profile.shards[1].attempts.size());
  EXPECT_TRUE(summary.Contains("cure.serve.execute"));

  // A second run is served from the backend caches and says so.
  ClusterProfile cached;
  ASSERT_TRUE(ParseClusterProfile(
      Body(fx.router->HandleLine("PROFILE QUERY A_L1,B_L1")), &cached));
  bool saw_hit = false;
  for (const ShardProfile& shard : cached.shards) {
    for (const std::string& line : shard.backend_lines) {
      if (ParseBackendProfileLine(line).cache == "HIT") saw_hit = true;
    }
  }
  EXPECT_TRUE(saw_hit);

  // Other verbs wrap too; errors and misuse stay ERR.
  EXPECT_EQ(fx.router->HandleLine("PROFILE TOPK A_L1 3").rfind("OK ", 0), 0u);
  EXPECT_EQ(fx.router->HandleLine("PROFILE ROLLUP A_L0 A").rfind("OK ", 0), 0u);
  EXPECT_EQ(fx.router->HandleLine("PROFILE").rfind("ERR InvalidArgument", 0),
            0u);
  EXPECT_EQ(
      fx.router->HandleLine("PROFILE STATS").rfind("ERR InvalidArgument", 0),
      0u);
  EXPECT_EQ(fx.router->HandleLine("PROFILE QUERY bogus").rfind("ERR ", 0), 0u);

  // PROFILE responses never poison the plain-query path: headers still match.
  EXPECT_EQ(fx.router->HandleLine("QUERY A_L1,B_L1").rfind(plain.substr(0, 20), 0),
            0u);
}

TEST(RouterObservabilityTest, MetricsClusterFederatesBackendSeries) {
  ObservabilityClusterFixture fx;
  ASSERT_EQ(fx.router->HandleLine("QUERY A_L1").rfind("OK ", 0), 0u);
  const std::string metrics = fx.router->HandleLine("METRICS cluster");
  ASSERT_EQ(metrics.rfind("OK\n", 0), 0u);
  // Router-side series are still present...
  EXPECT_NE(metrics.find("cure_router_queries_total"), std::string::npos);
  // ...plus every backend's series, labeled by shard/replica (4 replicas).
  EXPECT_NE(metrics.find("# cluster federation: scraped=4 failed=0"),
            std::string::npos)
      << metrics.substr(0, 2000);
  for (const char* sample :
       {"cure_serve_queries_total{shard=\"0\",replica=\"0\"}",
        "cure_serve_queries_total{shard=\"0\",replica=\"1\"}",
        "cure_serve_queries_total{shard=\"1\",replica=\"0\"}",
        "cure_serve_queries_total{shard=\"1\",replica=\"1\"}"}) {
    EXPECT_NE(metrics.find(sample), std::string::npos) << sample;
  }
  // Histograms merged bucket-exactly into the cluster namespace.
  EXPECT_NE(metrics.find("cure_cluster_query_latency_us_count"),
            std::string::npos);

  // Plain METRICS stays backend-free (no federation scrape per scrape).
  const std::string plain = fx.router->HandleLine("METRICS");
  EXPECT_EQ(plain.find("# cluster federation"), std::string::npos);
  EXPECT_EQ(plain.find("cure_serve_queries_total"), std::string::npos);
}

TEST(RouterObservabilityTest, BreakerStateIsOneLabeledSeries) {
  ObservabilityClusterFixture fx;
  const std::string metrics = fx.router->HandleLine("METRICS");
  EXPECT_NE(metrics.find("# TYPE cure_router_breaker_state gauge"),
            std::string::npos);
  for (const char* sample :
       {"cure_router_breaker_state{shard=\"0\",replica=\"0\"} 0",
        "cure_router_breaker_state{shard=\"1\",replica=\"1\"} 0"}) {
    EXPECT_NE(metrics.find(sample), std::string::npos) << metrics;
  }
  // The per-replica metric-NAME family is gone — cardinality no longer
  // scales with the map.
  EXPECT_EQ(metrics.find("breaker_state_s"), std::string::npos);
}

TEST(RouterObservabilityTest, SlowlogRecordsOverThresholdRoutedQueries) {
  RouterOptions options;
  options.slow_query_seconds = 1e-9;  // Everything is over threshold.
  ObservabilityClusterFixture fx(options);
  std::string dump = fx.router->HandleLine("SLOWLOG");
  ASSERT_EQ(dump.rfind("OK\n", 0), 0u);
  EXPECT_NE(dump.find("total 0 capacity "), std::string::npos) << dump;

  ASSERT_EQ(fx.router->HandleLine("QUERY A_L1 trace=515").rfind("OK ", 0), 0u);
  dump = fx.router->HandleLine("SLOWLOG");
  EXPECT_NE(dump.find("#1 "), std::string::npos) << dump;
  EXPECT_NE(dump.find("trace=515"), std::string::npos) << dump;
  EXPECT_NE(dump.find("verb=QUERY"), std::string::npos) << dump;
  EXPECT_NE(dump.find("shards_ok=2/2"), std::string::npos) << dump;
}

}  // namespace
}  // namespace cure
