#include "query/node_query.h"

#include <gtest/gtest.h>

#include "engine/cure.h"
#include "gen/datasets.h"
#include "gen/random.h"
#include "query/reference.h"
#include "query/workload.h"
#include "storage/file_io.h"

namespace cure {
namespace {

using engine::BuildCure;
using engine::CureCube;
using engine::CureOptions;
using engine::FactInput;
using gen::Dataset;
using query::ResultSink;
using schema::NodeId;

Dataset MakeHier(uint64_t tuples, uint64_t seed) {
  Dataset ds;
  std::vector<schema::Dimension> dims;
  dims.push_back(schema::Dimension::Linear("A", {30, 10, 2}));
  dims.push_back(schema::Dimension::Linear("B", {12, 4}));
  dims.push_back(schema::Dimension::Flat("C", 6));
  Result<schema::CubeSchema> schema = schema::CubeSchema::Create(
      std::move(dims), 1,
      {{schema::AggFn::kSum, 0, "sum"}, {schema::AggFn::kCount, 0, "cnt"}});
  EXPECT_TRUE(schema.ok());
  ds.schema = std::move(schema).value();
  ds.table = schema::FactTable(3, 1);
  gen::Rng rng(seed);
  for (uint64_t t = 0; t < tuples; ++t) {
    const uint32_t row[3] = {static_cast<uint32_t>(rng.NextRange(30)),
                             static_cast<uint32_t>(rng.NextRange(12)),
                             static_cast<uint32_t>(rng.NextRange(6))};
    const int64_t m = static_cast<int64_t>(rng.NextRange(50));
    ds.table.AppendRow(row, &m);
  }
  return ds;
}

TEST(ResultSinkTest, ChecksumIsOrderIndependent) {
  ResultSink a, b;
  const uint32_t d1[] = {1, 2};
  const uint32_t d2[] = {3, 4};
  const int64_t m1[] = {10};
  const int64_t m2[] = {20};
  a.Emit(d1, 2, m1, 1);
  a.Emit(d2, 2, m2, 1);
  b.Emit(d2, 2, m2, 1);
  b.Emit(d1, 2, m1, 1);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.checksum(), b.checksum());
  a.Reset();
  EXPECT_EQ(a.count(), 0u);
}

TEST(CountIcebergQueryTest, MatchesFilteredReference) {
  Dataset ds = MakeHier(800, 31);
  CureOptions options;
  FactInput input{.table = &ds.table};
  Result<std::unique_ptr<CureCube>> cube = BuildCure(ds.schema, input, options);
  ASSERT_TRUE(cube.ok());
  Result<std::unique_ptr<query::CureQueryEngine>> engine =
      query::CureQueryEngine::Create(cube->get(), 1.0);
  ASSERT_TRUE(engine.ok());
  const schema::NodeIdCodec& codec = (*cube)->store().codec();
  const int count_agg = 1;  // "cnt"
  for (NodeId id = 0; id < codec.num_nodes(); ++id) {
    ResultSink sink(true);
    ASSERT_TRUE((*engine)->QueryNodeCountIceberg(id, count_agg, 3, &sink).ok());
    // Reference: all groups, then filter by count >= 3.
    Result<std::vector<ResultSink::Row>> all =
        query::ReferenceNodeResult(ds.schema, ds.table, id);
    ASSERT_TRUE(all.ok());
    std::vector<ResultSink::Row> expected;
    for (ResultSink::Row& row : *all) {
      if (row.aggrs[count_agg] >= 3) expected.push_back(std::move(row));
    }
    EXPECT_TRUE(query::SameResults(sink.TakeRows(), std::move(expected)))
        << "node " << id;
  }
}

TEST(CountIcebergQueryTest, SkipsTtWork) {
  // A sparse dataset has huge TT populations; iceberg queries never touch
  // them. We verify by comparing emitted tuple counts.
  gen::SyntheticSpec spec;
  spec.num_dims = 4;
  spec.num_tuples = 300;
  spec.zipf = 0.0;
  spec.cardinalities.assign(4, 100);
  Dataset ds = gen::MakeSynthetic(spec);
  CureOptions options;
  FactInput input{.table = &ds.table};
  Result<std::unique_ptr<CureCube>> cube = BuildCure(ds.schema, input, options);
  ASSERT_TRUE(cube.ok());
  EXPECT_GT((*cube)->stats().tt, 100u);
  Result<std::unique_ptr<query::CureQueryEngine>> engine =
      query::CureQueryEngine::Create(cube->get(), 1.0);
  ASSERT_TRUE(engine.ok());
  const NodeId base = 0;  // all dims grouped at leaf
  ResultSink full, iceberg;
  ASSERT_TRUE((*engine)->QueryNode(base, &full).ok());
  ASSERT_TRUE((*engine)->QueryNodeCountIceberg(base, 1, 2, &iceberg).ok());
  EXPECT_LT(iceberg.count(), full.count());
}

TEST(FlatRollupTest, MatchesHierarchicalCube) {
  Dataset ds = MakeHier(700, 32);
  // Hierarchical cube.
  CureOptions hopts;
  FactInput input{.table = &ds.table};
  Result<std::unique_ptr<CureCube>> hier = BuildCure(ds.schema, input, hopts);
  ASSERT_TRUE(hier.ok());
  Result<std::unique_ptr<query::CureQueryEngine>> hier_engine =
      query::CureQueryEngine::Create(hier->get(), 1.0);
  ASSERT_TRUE(hier_engine.ok());
  // Flat cube (FCURE).
  CureOptions fopts;
  fopts.flat = true;
  Result<std::unique_ptr<CureCube>> flat = BuildCure(ds.schema, input, fopts);
  ASSERT_TRUE(flat.ok());
  Result<std::unique_ptr<query::CureQueryEngine>> flat_engine =
      query::CureQueryEngine::Create(flat->get(), 1.0);
  ASSERT_TRUE(flat_engine.ok());

  const schema::NodeIdCodec& codec = (*hier)->store().codec();
  for (NodeId id = 0; id < codec.num_nodes(); ++id) {
    ResultSink from_hier(true), from_flat(true);
    ASSERT_TRUE((*hier_engine)->QueryNode(id, &from_hier).ok());
    ASSERT_TRUE(query::QueryHierarchicalOverFlat(**flat_engine, ds.schema, id,
                                                 &from_flat)
                    .ok());
    EXPECT_TRUE(query::SameResults(from_hier.rows(), from_flat.rows()))
        << "node " << id;
  }
}

TEST(CachingTest, FractionZeroStillCorrect) {
  Dataset ds = MakeHier(500, 33);
  const std::string path = "/tmp/cure_query_test_fact.bin";
  Result<storage::Relation> rel =
      storage::Relation::CreateFile(path, ds.table.RecordSize());
  ASSERT_TRUE(rel.ok());
  ASSERT_TRUE(ds.table.WriteTo(&rel.value()).ok());
  ASSERT_TRUE(rel->Seal().ok());
  CureOptions options;
  FactInput input{.relation = &rel.value()};
  Result<std::unique_ptr<CureCube>> cube = BuildCure(ds.schema, input, options);
  ASSERT_TRUE(cube.ok());
  for (double fraction : {0.0, 0.25, 1.0}) {
    Result<std::unique_ptr<query::CureQueryEngine>> engine =
        query::CureQueryEngine::Create(cube->get(), fraction);
    ASSERT_TRUE(engine.ok());
    const schema::NodeIdCodec& codec = (*cube)->store().codec();
    ResultSink sink(true);
    ASSERT_TRUE((*engine)->QueryNode(codec.Encode({0, 0, 0}), &sink).ok());
    Result<std::vector<ResultSink::Row>> expected = query::ReferenceNodeResult(
        ds.schema, ds.table, codec.Encode({0, 0, 0}));
    ASSERT_TRUE(expected.ok());
    EXPECT_TRUE(query::SameResults(sink.TakeRows(), std::move(expected).value()));
  }
  ASSERT_TRUE(storage::RemoveFile(path).ok());
}

TEST(WorkloadTest, RandomNodesInRangeAndDeterministic) {
  Dataset ds = MakeHier(10, 34);
  const schema::NodeIdCodec codec(ds.schema);
  std::vector<NodeId> a = query::RandomNodeWorkload(codec, 100, 5);
  std::vector<NodeId> b = query::RandomNodeWorkload(codec, 100, 5);
  std::vector<NodeId> c = query::RandomNodeWorkload(codec, 100, 6);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  for (NodeId id : a) EXPECT_LT(id, codec.num_nodes());
}

TEST(WorkloadTest, MeasureQrtAccumulates) {
  Dataset ds = MakeHier(300, 35);
  CureOptions options;
  FactInput input{.table = &ds.table};
  Result<std::unique_ptr<CureCube>> cube = BuildCure(ds.schema, input, options);
  ASSERT_TRUE(cube.ok());
  Result<std::unique_ptr<query::CureQueryEngine>> engine =
      query::CureQueryEngine::Create(cube->get(), 1.0);
  ASSERT_TRUE(engine.ok());
  const schema::NodeIdCodec& codec = (*cube)->store().codec();
  std::vector<NodeId> workload = query::RandomNodeWorkload(codec, 20, 7);
  Result<query::QrtStats> stats = query::MeasureQrt(
      workload, [&](NodeId id, ResultSink* sink) {
        return (*engine)->QueryNode(id, sink);
      });
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->queries, 20u);
  EXPECT_GT(stats->total_tuples, 0u);
  EXPECT_GE(stats->avg_seconds, 0.0);
}

TEST(QueryEngineTest, RejectsShortPlanCubes) {
  Dataset ds = MakeHier(100, 36);
  CureOptions options;
  options.plan_style = plan::ExecutionPlan::Style::kShort;
  FactInput input{.table = &ds.table};
  Result<std::unique_ptr<CureCube>> cube = BuildCure(ds.schema, input, options);
  ASSERT_TRUE(cube.ok());
  EXPECT_FALSE(query::CureQueryEngine::Create(cube->get(), 1.0).ok());
}

}  // namespace
}  // namespace cure
