// Live cube maintenance tests: versioned snapshots, delta-vs-rebuild
// refresh arbitration, WAL-backed reopen, epoch cache invalidation, the
// APPEND/FLUSH protocol verbs, and the zero-downtime guarantee — queries
// running concurrently with append+refresh always match one version's
// serial answer, never a mix (this suite also runs under TSan in CI).
#include "maintain/live_cube.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/cure.h"
#include "gen/random.h"
#include "query/node_query.h"
#include "query/reference.h"
#include "serve/cube_server.h"
#include "serve/protocol.h"
#include "serve/tcp_server.h"
#include "storage/file_io.h"

namespace cure {
namespace {

using engine::BuildCure;
using engine::CureOptions;
using engine::FactInput;
using maintain::LiveCube;
using maintain::MaintainOptions;
using maintain::RowBatch;
using query::CureQueryEngine;
using query::ResultSink;
using schema::NodeId;
using serve::CubeServer;
using serve::CubeServerOptions;
using serve::QueryRequest;
using serve::QueryResponse;
using serve::TcpLineServer;
using serve::TcpServerOptions;

constexpr int kDims = 3;
constexpr int kMeasures = 1;
constexpr uint32_t kCards[kDims] = {20, 10, 4};

schema::CubeSchema MakeSchema() {
  std::vector<schema::Dimension> dims;
  dims.push_back(schema::Dimension::Linear("A", {20, 5, 2}));
  dims.push_back(schema::Dimension::Linear("B", {10, 2}));
  dims.push_back(schema::Dimension::Flat("C", 4));
  auto schema = schema::CubeSchema::Create(
      std::move(dims), 1,
      {{schema::AggFn::kSum, 0, "s"}, {schema::AggFn::kCount, 0, "c"}});
  EXPECT_TRUE(schema.ok());
  return std::move(schema).value();
}

void AppendRandomRows(schema::FactTable* table, uint64_t count, uint64_t seed) {
  gen::Rng rng(seed);
  for (uint64_t i = 0; i < count; ++i) {
    const uint32_t row[kDims] = {static_cast<uint32_t>(rng.NextRange(kCards[0])),
                                 static_cast<uint32_t>(rng.NextRange(kCards[1])),
                                 static_cast<uint32_t>(rng.NextRange(kCards[2]))};
    const int64_t m = static_cast<int64_t>(rng.NextRange(50));
    table->AppendRow(row, &m);
  }
}

RowBatch MakeBatch(uint64_t count, uint64_t seed) {
  RowBatch batch(kDims, kMeasures);
  gen::Rng rng(seed);
  for (uint64_t i = 0; i < count; ++i) {
    const uint32_t row[kDims] = {static_cast<uint32_t>(rng.NextRange(kCards[0])),
                                 static_cast<uint32_t>(rng.NextRange(kCards[1])),
                                 static_cast<uint32_t>(rng.NextRange(kCards[2]))};
    const int64_t m = static_cast<int64_t>(rng.NextRange(50));
    batch.Add(row, &m);
  }
  return batch;
}

/// Appends every record of `batch` to `table` (the serial reference path).
void ApplyBatchToTable(const RowBatch& batch, schema::FactTable* table) {
  const size_t record = batch.record_size();
  for (uint64_t r = 0; r < batch.rows(); ++r) {
    const uint8_t* rec = batch.data() + r * record;
    uint32_t dims[kDims];
    int64_t measures[kMeasures];
    std::memcpy(dims, rec, sizeof(dims));
    std::memcpy(measures, rec + sizeof(dims), sizeof(measures));
    table->AppendRow(dims, measures);
  }
}

std::string WalPath(const std::string& name) {
  return "/tmp/cure_live_" + name + ".wal";
}

MaintainOptions MakeOptions(const std::string& name) {
  MaintainOptions options;
  options.wal_path = WalPath(name);
  std::remove(options.wal_path.c_str());
  // Tests drive refreshes explicitly through Flush().
  options.refresh_rows = ~0ull;
  options.refresh_bytes = ~0ull;
  return options;
}

/// Asserts the live cube's current snapshot answers every node exactly like
/// a cold BuildCure over `table` — the "post-swap equals cold rebuild"
/// acceptance criterion.
void ExpectSnapshotMatchesColdRebuild(const LiveCube& live,
                                      const schema::CubeSchema& schema,
                                      const schema::FactTable& table) {
  CureOptions options;
  FactInput input{.table = &table};
  auto cold = BuildCure(schema, input, options);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  auto cold_engine = CureQueryEngine::Create(cold->get(), 1.0);
  ASSERT_TRUE(cold_engine.ok());

  const std::shared_ptr<const maintain::CubeSnapshot> snapshot = live.snapshot();
  ASSERT_NE(snapshot, nullptr);
  EXPECT_EQ(snapshot->rows, table.num_rows());
  const schema::NodeIdCodec& codec = live.codec();
  for (NodeId id = 0; id < codec.num_nodes(); ++id) {
    ResultSink live_sink(true);
    ASSERT_TRUE(snapshot->engine->QueryNode(id, &live_sink).ok());
    ResultSink cold_sink(true);
    ASSERT_TRUE((*cold_engine)->QueryNode(id, &cold_sink).ok());
    ASSERT_TRUE(
        query::SameResults(live_sink.TakeRows(), cold_sink.TakeRows()))
        << "node " << codec.Name(id, schema) << " (" << id << ")";
  }
}

TEST(LiveCubeTest, OpenBuildsInitialVersion) {
  schema::CubeSchema schema = MakeSchema();
  schema::FactTable base(kDims, kMeasures);
  AppendRandomRows(&base, 500, 9100);
  auto live = LiveCube::Open(schema, std::move(base), MakeOptions("open"));
  ASSERT_TRUE(live.ok()) << live.status().ToString();

  const auto snapshot = (*live)->snapshot();
  ASSERT_NE(snapshot, nullptr);
  EXPECT_EQ(snapshot->version, 1u);
  EXPECT_EQ(snapshot->rows, 500u);
  const maintain::Freshness fresh = (*live)->freshness();
  EXPECT_EQ(fresh.version, 1u);
  EXPECT_EQ(fresh.total_rows, 500u);
  EXPECT_EQ(fresh.pending_rows, 0u);
  ASSERT_TRUE(storage::RemoveFile((*live)->options().wal_path).ok());
}

TEST(LiveCubeTest, FlushIsANoopWithNothingPending) {
  schema::CubeSchema schema = MakeSchema();
  schema::FactTable base(kDims, kMeasures);
  AppendRandomRows(&base, 200, 9200);
  auto live = LiveCube::Open(schema, std::move(base), MakeOptions("noop"));
  ASSERT_TRUE(live.ok());
  auto stats = (*live)->Flush();
  ASSERT_TRUE(stats.ok());
  EXPECT_FALSE(stats->refreshed);
  EXPECT_EQ(stats->rows_applied, 0u);
  EXPECT_EQ(stats->version, 1u);
  EXPECT_EQ((*live)->counters().refresh_total, 0u);
  ASSERT_TRUE(storage::RemoveFile((*live)->options().wal_path).ok());
}

TEST(LiveCubeTest, DeltaRefreshMatchesColdRebuild) {
  schema::CubeSchema schema = MakeSchema();
  schema::FactTable base(kDims, kMeasures);
  AppendRandomRows(&base, 800, 9300);
  schema::FactTable reference(kDims, kMeasures);
  AppendRandomRows(&reference, 800, 9300);

  auto live = LiveCube::Open(schema, std::move(base), MakeOptions("delta"));
  ASSERT_TRUE(live.ok()) << live.status().ToString();

  const RowBatch batch = MakeBatch(120, 9301);
  ApplyBatchToTable(batch, &reference);
  ASSERT_TRUE((*live)->Append(batch).ok());
  EXPECT_EQ((*live)->freshness().pending_rows, 120u);

  // The first refresh materializes the standby replica from scratch — there
  // is no cube on it to delta-update yet — so it takes the rebuild path.
  auto stats = (*live)->Flush();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_TRUE(stats->refreshed);
  EXPECT_FALSE(stats->used_delta);
  EXPECT_EQ(stats->rows_applied, 120u);
  EXPECT_EQ(stats->version, 2u);
  EXPECT_EQ((*live)->counters().refresh_rebuild, 1u);
  EXPECT_EQ((*live)->freshness().pending_rows, 0u);
  ExpectSnapshotMatchesColdRebuild(**live, schema, reference);

  // Steady state: the second refresh flips back to the replica holding the
  // version-1 cube and folds both pending slices in via ApplyDelta.
  const RowBatch second = MakeBatch(60, 9302);
  ApplyBatchToTable(second, &reference);
  ASSERT_TRUE((*live)->Append(second).ok());
  auto stats2 = (*live)->Flush();
  ASSERT_TRUE(stats2.ok()) << stats2.status().ToString();
  EXPECT_TRUE(stats2->used_delta);
  EXPECT_TRUE(stats2->fallback_reason.empty());
  EXPECT_EQ(stats2->version, 3u);
  EXPECT_EQ((*live)->counters().refresh_delta, 1u);
  ExpectSnapshotMatchesColdRebuild(**live, schema, reference);

  // And again: delta stays the steady-state path.
  const RowBatch third = MakeBatch(40, 9303);
  ApplyBatchToTable(third, &reference);
  ASSERT_TRUE((*live)->Append(third).ok());
  auto stats3 = (*live)->Flush();
  ASSERT_TRUE(stats3.ok());
  EXPECT_TRUE(stats3->used_delta);
  EXPECT_EQ((*live)->counters().refresh_delta, 2u);
  ExpectSnapshotMatchesColdRebuild(**live, schema, reference);
  ASSERT_TRUE(storage::RemoveFile((*live)->options().wal_path).ok());
}

TEST(LiveCubeTest, IcebergBuildFallsBackToRebuildWithReason) {
  schema::CubeSchema schema = MakeSchema();
  schema::FactTable base(kDims, kMeasures);
  AppendRandomRows(&base, 600, 9400);
  MaintainOptions options = MakeOptions("iceberg");
  options.build.min_support = 2;  // iceberg cubes fail ApplyDelta's checks
  auto live = LiveCube::Open(schema, std::move(base), options);
  ASSERT_TRUE(live.ok()) << live.status().ToString();

  // Warm up past the first-refresh rebuild so the next refresh actually
  // attempts ApplyDelta against an iceberg cube.
  ASSERT_TRUE((*live)->Append(MakeBatch(80, 9401)).ok());
  ASSERT_TRUE((*live)->Flush().ok());
  ASSERT_TRUE((*live)->Append(MakeBatch(50, 9402)).ok());
  auto stats = (*live)->Flush();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_TRUE(stats->refreshed);
  EXPECT_FALSE(stats->used_delta);
  EXPECT_NE(stats->fallback_reason.find("iceberg"), std::string::npos)
      << stats->fallback_reason;
  EXPECT_EQ((*live)->counters().refresh_rebuild, 2u);
  EXPECT_EQ((*live)->counters().refresh_delta, 0u);
  ASSERT_TRUE(storage::RemoveFile((*live)->options().wal_path).ok());
}

TEST(LiveCubeTest, AllowDeltaFalseForcesRebuild) {
  schema::CubeSchema schema = MakeSchema();
  schema::FactTable base(kDims, kMeasures);
  AppendRandomRows(&base, 600, 9500);
  schema::FactTable reference(kDims, kMeasures);
  AppendRandomRows(&reference, 600, 9500);
  MaintainOptions options = MakeOptions("rebuild");
  options.allow_delta = false;
  auto live = LiveCube::Open(schema, std::move(base), options);
  ASSERT_TRUE(live.ok());

  const RowBatch batch = MakeBatch(90, 9501);
  ApplyBatchToTable(batch, &reference);
  ASSERT_TRUE((*live)->Append(batch).ok());
  auto stats = (*live)->Flush();
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->refreshed);
  EXPECT_FALSE(stats->used_delta);
  EXPECT_EQ((*live)->counters().refresh_rebuild, 1u);
  ExpectSnapshotMatchesColdRebuild(**live, schema, reference);
  ASSERT_TRUE(storage::RemoveFile((*live)->options().wal_path).ok());
}

TEST(LiveCubeTest, AppendValidatesLeafCodesBeforeLogging) {
  schema::CubeSchema schema = MakeSchema();
  schema::FactTable base(kDims, kMeasures);
  AppendRandomRows(&base, 100, 9600);
  auto live = LiveCube::Open(schema, std::move(base), MakeOptions("codes"));
  ASSERT_TRUE(live.ok());

  RowBatch bad(kDims, kMeasures);
  const uint32_t dims[kDims] = {20, 0, 0};  // A's leaf cardinality is 20
  const int64_t m = 1;
  bad.Add(dims, &m);
  const Status status = (*live)->Append(bad);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument)
      << status.ToString();
  EXPECT_EQ((*live)->wal_rows(), 0u);
  EXPECT_EQ((*live)->freshness().pending_rows, 0u);

  RowBatch wrong_shape(kDims + 1, kMeasures);
  EXPECT_FALSE((*live)->Append(wrong_shape).ok());
  ASSERT_TRUE(storage::RemoveFile((*live)->options().wal_path).ok());
}

TEST(LiveCubeTest, ReopenReplaysWalIntoTheInitialBuild) {
  schema::CubeSchema schema = MakeSchema();
  const std::string wal = WalPath("reopen");
  std::remove(wal.c_str());
  schema::FactTable reference(kDims, kMeasures);
  AppendRandomRows(&reference, 400, 9700);

  {
    schema::FactTable base(kDims, kMeasures);
    AppendRandomRows(&base, 400, 9700);
    MaintainOptions options;
    options.wal_path = wal;
    options.refresh_rows = ~0ull;
    options.refresh_bytes = ~0ull;
    auto live = LiveCube::Open(schema, std::move(base), options);
    ASSERT_TRUE(live.ok());
    // Two durable appends, only the first folded in by a refresh — both
    // must survive the "crash" (destruction without a final flush).
    const RowBatch first = MakeBatch(70, 9701);
    ApplyBatchToTable(first, &reference);
    ASSERT_TRUE((*live)->Append(first).ok());
    ASSERT_TRUE((*live)->Flush().ok());
    const RowBatch second = MakeBatch(30, 9702);
    ApplyBatchToTable(second, &reference);
    ASSERT_TRUE((*live)->Append(second).ok());
  }

  schema::FactTable base(kDims, kMeasures);
  AppendRandomRows(&base, 400, 9700);
  MaintainOptions options;
  options.wal_path = wal;
  options.refresh_rows = ~0ull;
  options.refresh_bytes = ~0ull;
  auto live = LiveCube::Open(schema, std::move(base), options);
  ASSERT_TRUE(live.ok()) << live.status().ToString();
  EXPECT_EQ((*live)->wal_recovery().rows, 100u);
  EXPECT_EQ((*live)->wal_recovery().batches, 2u);
  const auto snapshot = (*live)->snapshot();
  EXPECT_EQ(snapshot->rows, 500u);
  EXPECT_EQ((*live)->freshness().pending_rows, 0u);
  ExpectSnapshotMatchesColdRebuild(**live, schema, reference);
  ASSERT_TRUE(storage::RemoveFile(wal).ok());
}

// ------------------------------------------------------------ serving layer

TEST(LiveServeTest, StaticServerRejectsMaintenanceVerbs) {
  schema::CubeSchema schema = MakeSchema();
  schema::FactTable table(kDims, kMeasures);
  AppendRandomRows(&table, 300, 9800);
  CureOptions build;
  FactInput input{.table = &table};
  auto cube = BuildCure(schema, input, build);
  ASSERT_TRUE(cube.ok());
  CubeServerOptions options;
  options.num_threads = 2;
  auto server = CubeServer::Create(cube->get(), options);
  ASSERT_TRUE(server.ok());

  EXPECT_EQ((*server)->Append(MakeBatch(1, 1)).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ((*server)->Flush().status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ((*server)->GetFreshness().status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ((*server)->live(), nullptr);
}

TEST(LiveServeTest, EpochStampedCacheMissesAfterRefresh) {
  schema::CubeSchema schema = MakeSchema();
  schema::FactTable base(kDims, kMeasures);
  AppendRandomRows(&base, 500, 9900);
  auto live = LiveCube::Open(schema, std::move(base), MakeOptions("epoch"));
  ASSERT_TRUE(live.ok());
  CubeServerOptions options;
  options.num_threads = 2;
  options.cache_bytes = 4 << 20;
  auto server = CubeServer::Create(live->get(), options);
  ASSERT_TRUE(server.ok());

  QueryRequest request;
  auto node = serve::ParseNodeSpec(schema, (*live)->codec(), "A_L1,B_L1");
  ASSERT_TRUE(node.ok());
  request.node = *node;

  const QueryResponse first = (*server)->Execute(request);
  ASSERT_TRUE(first.status.ok());
  EXPECT_FALSE(first.cache_hit);
  EXPECT_EQ(first.version, 1u);
  const QueryResponse second = (*server)->Execute(request);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.checksum, first.checksum);

  ASSERT_TRUE((*server)->Append(MakeBatch(200, 9901)).ok());
  auto flushed = (*server)->Flush();
  ASSERT_TRUE(flushed.ok());
  EXPECT_EQ(flushed->version, 2u);

  // New epoch → the old cache entry no longer matches; fresh execution
  // reflects the appended rows.
  const QueryResponse third = (*server)->Execute(request);
  ASSERT_TRUE(third.status.ok());
  EXPECT_FALSE(third.cache_hit);
  EXPECT_EQ(third.version, 2u);
  EXPECT_GT(third.count, 0u);
  EXPECT_NE(third.checksum, first.checksum);
  const QueryResponse fourth = (*server)->Execute(request);
  EXPECT_TRUE(fourth.cache_hit);
  EXPECT_EQ(fourth.checksum, third.checksum);
  ASSERT_TRUE(storage::RemoveFile((*live)->options().wal_path).ok());
}

// The zero-downtime acceptance test (also the TSan concurrent
// append-while-querying case): reader threads hammer one node while the
// main thread appends and flushes through several versions. Every response
// must carry a published version and match that version's serial answer
// exactly — pre- or post-refresh, never a mix.
TEST(LiveServeTest, ConcurrentQueriesDuringRefreshNeverSeeAMixedState) {
  schema::CubeSchema schema = MakeSchema();
  schema::FactTable base(kDims, kMeasures);
  AppendRandomRows(&base, 2000, 10000);
  auto live = LiveCube::Open(schema, std::move(base), MakeOptions("zdt"));
  ASSERT_TRUE(live.ok());
  CubeServerOptions options;
  options.num_threads = 2;
  options.cache_bytes = 1 << 20;
  auto server = CubeServer::Create(live->get(), options);
  ASSERT_TRUE(server.ok());

  QueryRequest request;
  auto node = serve::ParseNodeSpec(schema, (*live)->codec(), "A_L1,B_L1");
  ASSERT_TRUE(node.ok());
  request.node = *node;

  // Serial references per version. Snapshots are immutable, so recording a
  // version's answer after its publish is the same as during.
  std::map<uint64_t, std::pair<uint64_t, uint64_t>> reference;
  const QueryResponse initial = (*server)->Execute(request);
  ASSERT_TRUE(initial.status.ok());
  reference[initial.version] = {initial.count, initial.checksum};

  constexpr int kReaders = 4;
  std::atomic<bool> stop{false};
  struct Observation {
    uint64_t version, count, checksum;
  };
  std::vector<std::vector<Observation>> observed(kReaders);
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      while (!stop.load(std::memory_order_relaxed)) {
        const QueryResponse r = (*server)->Execute(request);
        ASSERT_TRUE(r.status.ok()) << r.status.ToString();
        observed[t].push_back({r.version, r.count, r.checksum});
      }
    });
  }

  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE((*server)->Append(MakeBatch(300, 10010 + round)).ok());
    auto flushed = (*server)->Flush();
    ASSERT_TRUE(flushed.ok()) << flushed.status().ToString();
    ASSERT_TRUE(flushed->refreshed);
    const QueryResponse ref = (*server)->Execute(request);
    ASSERT_TRUE(ref.status.ok());
    ASSERT_EQ(ref.version, flushed->version);
    reference[ref.version] = {ref.count, ref.checksum};
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();

  uint64_t total = 0;
  for (const auto& per_thread : observed) {
    total += per_thread.size();
    for (const Observation& o : per_thread) {
      const auto it = reference.find(o.version);
      ASSERT_NE(it, reference.end()) << "unpublished version " << o.version;
      EXPECT_EQ(o.count, it->second.first) << "version " << o.version;
      EXPECT_EQ(o.checksum, it->second.second) << "version " << o.version;
    }
  }
  EXPECT_GT(total, 0u);
  ASSERT_TRUE(storage::RemoveFile((*live)->options().wal_path).ok());
}

// ------------------------------------------------------------ line protocol

TEST(LiveServeTest, TcpProtocolAppendFlushAndStats) {
  schema::CubeSchema schema = MakeSchema();
  schema::FactTable base(kDims, kMeasures);
  AppendRandomRows(&base, 400, 10100);
  auto live = LiveCube::Open(schema, std::move(base), MakeOptions("tcp"));
  ASSERT_TRUE(live.ok());
  CubeServerOptions options;
  options.num_threads = 2;
  auto server = CubeServer::Create(live->get(), options);
  ASSERT_TRUE(server.ok());
  auto tcp = TcpLineServer::Start(server->get(), TcpServerOptions{});
  ASSERT_TRUE(tcp.ok());

  // APPEND: two rows, D leaf codes + M measures each. The first FLUSH
  // rebuilds (fresh standby replica); the second takes the delta path.
  const std::string append = (*tcp)->HandleLine("APPEND 1 2 3 10 4 5 1 20");
  EXPECT_EQ(append, "OK 2 2\n.\n");
  EXPECT_EQ((*tcp)->HandleLine("FLUSH"), "OK 2 2 REBUILD\n.\n");
  EXPECT_EQ((*tcp)->HandleLine("APPEND 7 8 2 30"), "OK 1 1\n.\n");
  EXPECT_EQ((*tcp)->HandleLine("FLUSH"), "OK 3 1 DELTA\n.\n");
  EXPECT_EQ((*tcp)->HandleLine("FLUSH"), "OK 3 0 NOOP\n.\n");

  // Malformed appends: empty, token count not a multiple of D+M, junk.
  EXPECT_EQ((*tcp)->HandleLine("APPEND").substr(0, 3), "ERR");
  EXPECT_EQ((*tcp)->HandleLine("APPEND 1 2 3").substr(0, 3), "ERR");
  EXPECT_EQ((*tcp)->HandleLine("APPEND 1 2 x 10").substr(0, 3), "ERR");
  EXPECT_EQ((*tcp)->HandleLine("APPEND 99 0 0 1").substr(0, 3), "ERR");
  EXPECT_EQ((*tcp)->HandleLine("FLUSH now").substr(0, 3), "ERR");

  // STATS carries the maintenance section (satellite: cube version, last
  // refresh wall time, pending WAL rows).
  const std::string stats = (*tcp)->HandleLine("STATS");
  EXPECT_NE(stats.find("cube_version 3"), std::string::npos) << stats;
  EXPECT_NE(stats.find("pending_wal_rows 0"), std::string::npos);
  EXPECT_NE(stats.find("last_refresh_unix"), std::string::npos);
  EXPECT_NE(stats.find("refresh_rebuild 1"), std::string::npos);
  EXPECT_NE(stats.find("refresh_delta 1"), std::string::npos);
  EXPECT_NE(stats.find("refresh_latency_count 2"), std::string::npos);
  EXPECT_NE(stats.find("staleness_seconds"), std::string::npos);

  // The appended rows are queryable post-flush.
  const std::string query = (*tcp)->HandleLine("QUERY ALL");
  EXPECT_EQ(query.substr(0, 3), "OK ");
  (*tcp)->Stop();
  ASSERT_TRUE(storage::RemoveFile((*live)->options().wal_path).ok());
}

TEST(LiveServeTest, StaticProtocolRejectsMaintenanceVerbs) {
  schema::CubeSchema schema = MakeSchema();
  schema::FactTable table(kDims, kMeasures);
  AppendRandomRows(&table, 200, 10200);
  CureOptions build;
  FactInput input{.table = &table};
  auto cube = BuildCure(schema, input, build);
  ASSERT_TRUE(cube.ok());
  CubeServerOptions options;
  options.num_threads = 1;
  auto server = CubeServer::Create(cube->get(), options);
  ASSERT_TRUE(server.ok());
  auto tcp = TcpLineServer::Start(server->get(), TcpServerOptions{});
  ASSERT_TRUE(tcp.ok());
  const std::string append = (*tcp)->HandleLine("APPEND 1 2 3 10");
  EXPECT_EQ(append.substr(0, 3), "ERR");
  EXPECT_NE(append.find("FailedPrecondition"), std::string::npos) << append;
  EXPECT_EQ((*tcp)->HandleLine("FLUSH").substr(0, 3), "ERR");
  (*tcp)->Stop();
}

}  // namespace
}  // namespace cure
