// Regression tests for subtle bugs found (or nearly made) during
// development — each encodes an invariant that once broke.

#include <gtest/gtest.h>

#include "engine/bubst.h"
#include "engine/cure.h"
#include "gen/datasets.h"
#include "gen/random.h"
#include "query/node_query.h"
#include "query/reference.h"

namespace cure {
namespace {

using engine::BuildCure;
using engine::CureOptions;
using engine::FactInput;
using query::ResultSink;
using schema::AggFn;
using schema::Dimension;
using schema::NodeId;

TEST(BubstRegressionTest, MultiSubsetBstsAreNotDoubleCounted) {
  // A tuple that is a singleton both on {A} and on {B} produces BSTs in two
  // independent recursion branches; a naive "BST covers all supersets" query
  // rule would emit its AB tuple twice.
  gen::Dataset ds;
  std::vector<Dimension> dims;
  dims.push_back(Dimension::Flat("A", 4));
  dims.push_back(Dimension::Flat("B", 4));
  auto schema = schema::CubeSchema::Create(
      std::move(dims), 1, {{AggFn::kSum, 0, "s"}, {AggFn::kCount, 0, "c"}});
  ASSERT_TRUE(schema.ok());
  ds.schema = std::move(schema).value();
  ds.table = schema::FactTable(2, 1);
  // Row 0 is unique in A=3 AND unique in B=3.
  const std::vector<std::array<uint32_t, 2>> rows = {
      {3, 3}, {0, 0}, {0, 1}, {1, 0}, {1, 1}};
  for (const auto& r : rows) {
    const int64_t m = 10;
    ds.table.AppendRow(r.data(), &m);
  }
  auto bubst = engine::BuildBubst(ds.schema, ds.table, {});
  ASSERT_TRUE(bubst.ok());
  query::BubstQueryEngine engine(bubst->get());
  const schema::NodeIdCodec codec((*bubst)->schema());
  const NodeId ab = codec.Encode({0, 0});
  ResultSink sink(true);
  ASSERT_TRUE(engine.QueryNode(ab, &sink).ok());
  auto expected = query::ReferenceNodeResult(ds.schema, ds.table, ab);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(sink.count(), expected->size());
  EXPECT_TRUE(query::SameResults(sink.TakeRows(), std::move(expected).value()));
}

TEST(TtRegionRegressionTest, ExternalTtsDoNotLeakAcrossRegions) {
  // In a partitioned build, TTs of N-region nodes reference node N; they
  // must never be collected for partition-region queries (an N row that is
  // a singleton at A_{L+1} may cover many fact rows that split at finer
  // levels of A).
  gen::Dataset ds;
  std::vector<Dimension> dims;
  dims.push_back(Dimension::Linear("A", {16, 4, 2}));
  dims.push_back(Dimension::Flat("B", 4));
  auto schema = schema::CubeSchema::Create(
      std::move(dims), 1, {{AggFn::kSum, 0, "s"}, {AggFn::kCount, 0, "c"}});
  ASSERT_TRUE(schema.ok());
  ds.schema = std::move(schema).value();
  ds.table = schema::FactTable(2, 1);
  gen::Rng rng(91);
  // Heavily duplicated (A@1, B) combos that split at A@0.
  for (int i = 0; i < 400; ++i) {
    const uint32_t row[2] = {static_cast<uint32_t>(rng.NextRange(16)),
                             static_cast<uint32_t>(rng.NextRange(4))};
    const int64_t m = static_cast<int64_t>(rng.NextRange(9));
    ds.table.AppendRow(row, &m);
  }
  storage::Relation rel = storage::Relation::Memory(ds.table.RecordSize());
  ASSERT_TRUE(ds.table.WriteTo(&rel).ok());
  CureOptions options;
  options.force_external = true;
  options.memory_budget_bytes = 8192;
  FactInput input{.relation = &rel};
  auto cube = BuildCure(ds.schema, input, options);
  ASSERT_TRUE(cube.ok()) << cube.status().ToString();
  ASSERT_TRUE((*cube)->stats().external);
  ASSERT_GE((*cube)->stats().partition_level, 0);
  auto engine = query::CureQueryEngine::Create(cube->get(), 1.0);
  ASSERT_TRUE(engine.ok());
  // Check the *partition-region* nodes specifically (A at level <= L).
  const schema::NodeIdCodec& codec = (*cube)->store().codec();
  for (NodeId id = 0; id < codec.num_nodes(); ++id) {
    if ((*cube)->NodeRegion(id) != 0) continue;
    ResultSink sink(true);
    ASSERT_TRUE((*engine)->QueryNode(id, &sink).ok());
    auto expected = query::ReferenceNodeResult(ds.schema, ds.table, id);
    ASSERT_TRUE(expected.ok());
    EXPECT_TRUE(query::SameResults(sink.TakeRows(), std::move(expected).value()))
        << "partition-region node " << id;
  }
}

TEST(CommonSourceRegressionTest, NamespaceDisambiguatesEqualOrdinals) {
  // Two signatures with equal aggregates and equal *ordinals* but different
  // source relations (fact vs node N) are coincidental, not common-source.
  // The namespaced row-id guarantees their RowIds differ.
  EXPECT_NE(cube::MakeRowId(cube::kSourceFact, 5),
            cube::MakeRowId(cube::kSourceNodeN, 5));
}

TEST(LinearHierarchyRegressionTest, NonDividingCardinalitiesStayFunctional) {
  // Block roll-up maps must be derived level-from-level; deriving every
  // level directly from the leaf broke functionality for non-dividing
  // chains like 100 -> 50 -> 25 -> 12.
  Dimension dim = Dimension::Linear("P", {100, 50, 25, 12, 6, 3});
  for (int l = 0; l + 1 < dim.num_levels(); ++l) {
    auto map = dim.LevelToLevelMap(l, l + 1);
    ASSERT_TRUE(map.ok()) << "level " << l;
  }
}

TEST(PaperExampleRegressionTest, Fig9CommonSourceCats) {
  // Fig. 9b: tuples <1,1,30> in AB, <1,30> in A and <1,30> in B are
  // common-source CATs produced by rows {0, 1}. With Y >= 2 aggregates the
  // signatures must collapse into one AGGREGATES entry under format (a).
  gen::Dataset base = gen::MakePaperExample();
  // Rebuild with two aggregates so format (a) is applicable.
  auto schema = schema::CubeSchema::Create(
      base.schema.dims(), 1, {{AggFn::kSum, 0, "s"}, {AggFn::kCount, 0, "c"}});
  ASSERT_TRUE(schema.ok());
  CureOptions options;
  options.forced_cat_format = cube::CatFormat::kFormatA;
  FactInput input{.table = &base.table};
  auto cube = BuildCure(*schema, input, options);
  ASSERT_TRUE(cube.ok());
  // The three common-source CATs share one AGGREGATES tuple; coincidental
  // ones get their own.
  const auto counts = (*cube)->store().Counts();
  EXPECT_GT(counts.cat, 0u);
  EXPECT_LT(counts.aggregates, counts.cat);
}

TEST(ScannerRegressionTest, SegmentBoundariesSurviveRecursiveResort) {
  // FollowEdge computes each segment's extent before recursing; the
  // recursion re-sorts the segment in place. This test stresses deep
  // recursion over wide segments with many duplicates.
  gen::Dataset ds;
  std::vector<Dimension> dims;
  for (int d = 0; d < 5; ++d) dims.push_back(Dimension::Flat("D", 2));
  auto schema = schema::CubeSchema::Create(std::move(dims), 1,
                                           {{AggFn::kSum, 0, "s"}});
  ASSERT_TRUE(schema.ok());
  ds.schema = std::move(schema).value();
  ds.table = schema::FactTable(5, 1);
  gen::Rng rng(93);
  for (int i = 0; i < 512; ++i) {
    uint32_t row[5];
    for (auto& v : row) v = static_cast<uint32_t>(rng.NextRange(2));
    const int64_t m = 1;
    ds.table.AppendRow(row, &m);
  }
  CureOptions options;
  FactInput input{.table = &ds.table};
  auto cube = BuildCure(ds.schema, input, options);
  ASSERT_TRUE(cube.ok());
  auto engine = query::CureQueryEngine::Create(cube->get(), 1.0);
  ASSERT_TRUE(engine.ok());
  const schema::NodeIdCodec& codec = (*cube)->store().codec();
  for (NodeId id = 0; id < codec.num_nodes(); ++id) {
    ResultSink sink(true);
    ASSERT_TRUE((*engine)->QueryNode(id, &sink).ok());
    auto expected = query::ReferenceNodeResult(ds.schema, ds.table, id);
    ASSERT_TRUE(expected.ok());
    EXPECT_TRUE(query::SameResults(sink.TakeRows(), std::move(expected).value()));
  }
}

}  // namespace
}  // namespace cure
