#include <gtest/gtest.h>

#include "engine/bubst.h"
#include "engine/buc.h"
#include "engine/cure.h"
#include "gen/datasets.h"
#include "gen/random.h"
#include "query/node_query.h"
#include "query/reference.h"

namespace cure {
namespace {

using engine::BubstOptions;
using engine::BucOptions;
using engine::BuildBubst;
using engine::BuildBuc;
using gen::Dataset;
using query::ResultSink;
using schema::NodeId;

Dataset MakeSmall(uint64_t tuples, int dims, uint32_t card, double zipf,
                  uint64_t seed) {
  gen::SyntheticSpec spec;
  spec.num_dims = dims;
  spec.num_tuples = tuples;
  spec.zipf = zipf;
  spec.cardinalities.assign(dims, card);
  spec.seed = seed;
  return gen::MakeSynthetic(spec);
}

TEST(BucTest, MatchesReferenceOnAllNodes) {
  Dataset ds = MakeSmall(400, 4, 6, 0.8, 21);
  Result<std::unique_ptr<engine::BucCube>> cube =
      BuildBuc(ds.schema, ds.table, BucOptions{});
  ASSERT_TRUE(cube.ok()) << cube.status().ToString();
  query::BucQueryEngine engine(cube->get());
  const schema::NodeIdCodec codec((*cube)->schema());
  for (NodeId id = 0; id < codec.num_nodes(); ++id) {
    ResultSink sink(/*retain=*/true);
    ASSERT_TRUE(engine.QueryNode(id, &sink).ok());
    Result<std::vector<ResultSink::Row>> expected =
        query::ReferenceNodeResult((*cube)->schema(), ds.table, id);
    ASSERT_TRUE(expected.ok());
    EXPECT_TRUE(query::SameResults(sink.TakeRows(), std::move(expected).value()))
        << "node " << id;
  }
}

TEST(BucTest, IcebergPrunes) {
  Dataset ds = MakeSmall(500, 3, 4, 1.0, 22);
  BucOptions options;
  options.min_support = 4;
  Result<std::unique_ptr<engine::BucCube>> cube =
      BuildBuc(ds.schema, ds.table, options);
  ASSERT_TRUE(cube.ok());
  query::BucQueryEngine engine(cube->get());
  const schema::NodeIdCodec codec((*cube)->schema());
  for (NodeId id = 0; id < codec.num_nodes(); ++id) {
    ResultSink sink(/*retain=*/true);
    ASSERT_TRUE(engine.QueryNode(id, &sink).ok());
    Result<std::vector<ResultSink::Row>> expected =
        query::ReferenceNodeResult((*cube)->schema(), ds.table, id, 4);
    ASSERT_TRUE(expected.ok());
    EXPECT_TRUE(query::SameResults(sink.TakeRows(), std::move(expected).value()));
  }
}

TEST(BucTest, StoresFullUncondensedCube) {
  Dataset ds = MakeSmall(300, 3, 30, 0.0, 23);
  Result<std::unique_ptr<engine::BucCube>> cube =
      BuildBuc(ds.schema, ds.table, BucOptions{});
  ASSERT_TRUE(cube.ok());
  // Total tuples = sum of per-node group counts; with high cardinality this
  // far exceeds the input (the redundancy CURE removes).
  EXPECT_GT((*cube)->stats().plain, ds.table.num_rows());
}

TEST(BubstTest, MatchesReferenceOnAllNodes) {
  Dataset ds = MakeSmall(400, 4, 6, 0.8, 24);
  Result<std::unique_ptr<engine::BubstCube>> cube =
      BuildBubst(ds.schema, ds.table, BubstOptions{});
  ASSERT_TRUE(cube.ok()) << cube.status().ToString();
  query::BubstQueryEngine engine(cube->get());
  const schema::NodeIdCodec codec((*cube)->schema());
  for (NodeId id = 0; id < codec.num_nodes(); ++id) {
    ResultSink sink(/*retain=*/true);
    ASSERT_TRUE(engine.QueryNode(id, &sink).ok());
    Result<std::vector<ResultSink::Row>> expected =
        query::ReferenceNodeResult((*cube)->schema(), ds.table, id);
    ASSERT_TRUE(expected.ok());
    EXPECT_TRUE(query::SameResults(sink.TakeRows(), std::move(expected).value()))
        << "node " << id;
  }
}

TEST(BubstTest, BstsCondenseTheCube) {
  // Sparse data: many singleton groups -> BU-BST (BSTs stored once) is much
  // smaller than BUC (every node materialized in full).
  Dataset ds = MakeSmall(200, 4, 100, 0.0, 25);
  Result<std::unique_ptr<engine::BucCube>> buc =
      BuildBuc(ds.schema, ds.table, BucOptions{});
  Result<std::unique_ptr<engine::BubstCube>> bubst =
      BuildBubst(ds.schema, ds.table, BubstOptions{});
  ASSERT_TRUE(buc.ok());
  ASSERT_TRUE(bubst.ok());
  EXPECT_LT((*bubst)->stats().plain + (*bubst)->stats().tt,
            (*buc)->stats().plain);
  EXPECT_LT((*bubst)->TotalBytes(), (*buc)->store().TotalBytes());
}

TEST(BubstTest, MonolithicWiderThanCure) {
  // BU-BST rows are always D dims wide; CURE stores row-id references.
  Dataset ds = MakeSmall(500, 6, 20, 0.5, 26);
  Result<std::unique_ptr<engine::BubstCube>> bubst =
      BuildBubst(ds.schema, ds.table, BubstOptions{});
  engine::CureOptions copts;
  engine::FactInput input{.table = &ds.table};
  Result<std::unique_ptr<engine::CureCube>> cure =
      engine::BuildCure(ds.schema, input, copts);
  ASSERT_TRUE(bubst.ok());
  ASSERT_TRUE(cure.ok());
  EXPECT_LT((*cure)->TotalBytes(), (*bubst)->TotalBytes());
}

TEST(CrossEngineTest, AllEnginesAgreeOnFlatData) {
  Dataset ds = MakeSmall(350, 3, 8, 1.2, 27);
  // CURE.
  engine::CureOptions copts;
  engine::FactInput input{.table = &ds.table};
  Result<std::unique_ptr<engine::CureCube>> cure =
      engine::BuildCure(ds.schema, input, copts);
  ASSERT_TRUE(cure.ok());
  Result<std::unique_ptr<query::CureQueryEngine>> cure_engine =
      query::CureQueryEngine::Create(cure->get(), 1.0);
  ASSERT_TRUE(cure_engine.ok());
  // BUC + BU-BST.
  Result<std::unique_ptr<engine::BucCube>> buc =
      BuildBuc(ds.schema, ds.table, BucOptions{});
  Result<std::unique_ptr<engine::BubstCube>> bubst =
      BuildBubst(ds.schema, ds.table, BubstOptions{});
  ASSERT_TRUE(buc.ok());
  ASSERT_TRUE(bubst.ok());
  query::BucQueryEngine buc_engine(buc->get());
  query::BubstQueryEngine bubst_engine(bubst->get());

  const schema::NodeIdCodec codec((*cure)->schema());
  for (NodeId id = 0; id < codec.num_nodes(); ++id) {
    ResultSink a(true), b(true), c(true);
    ASSERT_TRUE((*cure_engine)->QueryNode(id, &a).ok());
    ASSERT_TRUE(buc_engine.QueryNode(id, &b).ok());
    ASSERT_TRUE(bubst_engine.QueryNode(id, &c).ok());
    EXPECT_TRUE(query::SameResults(a.rows(), b.rows())) << "CURE vs BUC @" << id;
    EXPECT_TRUE(query::SameResults(b.rows(), c.rows())) << "BUC vs BUBST @" << id;
  }
}

}  // namespace
}  // namespace cure
