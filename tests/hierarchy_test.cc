#include "schema/hierarchy.h"

#include <gtest/gtest.h>

#include "schema/cube_schema.h"
#include "schema/fact_table.h"
#include "storage/relation.h"

namespace cure {
namespace schema {
namespace {

TEST(DimensionTest, LinearBasics) {
  Dimension dim = Dimension::Linear("Region", {100, 10, 2});
  EXPECT_EQ(dim.num_levels(), 3);
  EXPECT_EQ(dim.all_level(), 3);
  EXPECT_EQ(dim.leaf_cardinality(), 100u);
  EXPECT_EQ(dim.cardinality(1), 10u);
  EXPECT_EQ(dim.cardinality(2), 2u);
  EXPECT_TRUE(dim.is_linear());
  // Block roll-up: leaf code 0 -> parent 0, leaf 99 -> parent 9.
  EXPECT_EQ(dim.CodeAt(0, 1), 0u);
  EXPECT_EQ(dim.CodeAt(99, 1), 9u);
  EXPECT_EQ(dim.CodeAt(99, 2), 1u);
  // Plan metadata: single root (top level), chain of dashed children.
  ASSERT_EQ(dim.plan_roots().size(), 1u);
  EXPECT_EQ(dim.plan_roots()[0], 2);
  ASSERT_EQ(dim.plan_children(2).size(), 1u);
  EXPECT_EQ(dim.plan_children(2)[0], 1);
  ASSERT_EQ(dim.plan_children(1).size(), 1u);
  EXPECT_EQ(dim.plan_children(1)[0], 0);
  EXPECT_TRUE(dim.plan_children(0).empty());
}

TEST(DimensionTest, FlatDimension) {
  Dimension dim = Dimension::Flat("X", 42);
  EXPECT_EQ(dim.num_levels(), 1);
  EXPECT_EQ(dim.leaf_cardinality(), 42u);
  ASSERT_EQ(dim.plan_roots().size(), 1u);
  EXPECT_EQ(dim.plan_roots()[0], 0);
  EXPECT_TRUE(dim.is_linear());
}

TEST(DimensionTest, DerivesRelation) {
  Dimension dim = Dimension::Linear("D", {50, 10, 5});
  EXPECT_TRUE(dim.Derives(0, 0));
  EXPECT_TRUE(dim.Derives(0, 1));
  EXPECT_TRUE(dim.Derives(0, 2));
  EXPECT_TRUE(dim.Derives(1, 2));
  EXPECT_FALSE(dim.Derives(2, 1));
  EXPECT_FALSE(dim.Derives(1, 0));
  // ALL derivable from everything.
  EXPECT_TRUE(dim.Derives(2, dim.all_level()));
}

TEST(DimensionTest, LevelToLevelMap) {
  Dimension dim = Dimension::Linear("D", {100, 20, 4});
  Result<std::vector<uint32_t>> map = dim.LevelToLevelMap(1, 2);
  ASSERT_TRUE(map.ok());
  ASSERT_EQ(map->size(), 20u);
  for (uint32_t leaf = 0; leaf < 100; ++leaf) {
    EXPECT_EQ((*map)[dim.CodeAt(leaf, 1)], dim.CodeAt(leaf, 2));
  }
  EXPECT_FALSE(dim.LevelToLevelMap(2, 1).ok());
}

// The paper's Fig. 5 complex hierarchy: day -> {week, month}, month -> year.
Dimension MakeTimeDimension() {
  const uint32_t days = 364;
  std::vector<Level> levels(4);
  levels[0].name = "day";
  levels[0].cardinality = days;
  levels[0].parents = {1, 2};  // week, month

  levels[1].name = "week";
  levels[1].cardinality = 52;
  levels[1].leaf_to_code.resize(days);
  for (uint32_t d = 0; d < days; ++d) levels[1].leaf_to_code[d] = d / 7;

  levels[2].name = "month";
  levels[2].cardinality = 13;  // 28-day "months" so the DAG is consistent
  levels[2].leaf_to_code.resize(days);
  for (uint32_t d = 0; d < days; ++d) levels[2].leaf_to_code[d] = d / 28;
  levels[2].parents = {3};

  levels[3].name = "year";
  levels[3].cardinality = 1;
  levels[3].leaf_to_code.assign(days, 0);

  Result<Dimension> dim = Dimension::Create("time", std::move(levels));
  EXPECT_TRUE(dim.ok()) << dim.status().ToString();
  return std::move(dim).value();
}

TEST(DimensionTest, ComplexHierarchyModifiedRule2) {
  Dimension time = MakeTimeDimension();
  EXPECT_FALSE(time.is_linear());
  // Roots: week (no parent) and year (no parent).
  std::vector<int> roots = time.plan_roots();
  std::sort(roots.begin(), roots.end());
  EXPECT_EQ(roots, (std::vector<int>{1, 3}));
  // Modified Rule 2: day's dashed parent is week (card 52 > month's 13);
  // the month -> day edge is discarded, exactly the paper's Fig. 5 example.
  EXPECT_EQ(time.plan_parent(0), 1);
  EXPECT_EQ(time.plan_children(1), (std::vector<int>{0}));
  EXPECT_TRUE(time.plan_children(2).empty());
  EXPECT_EQ(time.plan_children(3), (std::vector<int>{2}));
}

TEST(DimensionTest, InconsistentMappingRejected) {
  // Child code 0 maps to two different parent codes.
  std::vector<Level> levels(2);
  levels[0].name = "leaf";
  levels[0].cardinality = 4;
  levels[0].parents = {1};
  levels[1].name = "top";
  levels[1].cardinality = 2;
  levels[1].leaf_to_code = {0, 1, 0, 1};
  Result<Dimension> bad = Dimension::Create("ok_actually", std::move(levels));
  // leaf is identity, so leaf -> top is always functional; build a 3-level
  // case where the middle level breaks functionality instead.
  EXPECT_TRUE(bad.ok());

  std::vector<Level> levels3(3);
  levels3[0].name = "leaf";
  levels3[0].cardinality = 4;
  levels3[0].parents = {1};
  levels3[1].name = "mid";
  levels3[1].cardinality = 2;
  levels3[1].leaf_to_code = {0, 0, 1, 1};
  levels3[1].parents = {2};
  levels3[2].name = "top";
  levels3[2].cardinality = 2;
  levels3[2].leaf_to_code = {0, 1, 0, 1};  // mid=0 maps to top 0 and 1
  EXPECT_FALSE(Dimension::Create("bad", std::move(levels3)).ok());
}

TEST(DimensionTest, CycleRejected) {
  std::vector<Level> levels(3);
  levels[0].name = "leaf";
  levels[0].cardinality = 2;
  levels[0].parents = {1};
  levels[1].name = "a";
  levels[1].cardinality = 2;
  levels[1].leaf_to_code = {0, 1};
  levels[1].parents = {2};
  levels[2].name = "b";
  levels[2].cardinality = 2;
  levels[2].leaf_to_code = {0, 1};
  levels[2].parents = {1};  // cycle a <-> b
  EXPECT_FALSE(Dimension::Create("cyclic", std::move(levels)).ok());
}

TEST(DimensionTest, UnreachableLevelRejected) {
  std::vector<Level> levels(2);
  levels[0].name = "leaf";
  levels[0].cardinality = 4;
  // No parent edge at all: level 1 unreachable.
  levels[1].name = "orphan";
  levels[1].cardinality = 2;
  levels[1].leaf_to_code = {0, 0, 1, 1};
  EXPECT_FALSE(Dimension::Create("orphaned", std::move(levels)).ok());
}

TEST(CubeSchemaTest, CreateAndFlatten) {
  std::vector<Dimension> dims;
  dims.push_back(Dimension::Linear("A", {100, 10}));
  dims.push_back(Dimension::Flat("B", 50));
  Result<CubeSchema> schema =
      CubeSchema::Create(std::move(dims), 1, {{AggFn::kSum, 0, "s"}});
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->num_dims(), 2);
  EXPECT_EQ(schema->num_aggregates(), 1);

  CubeSchema flat = schema->Flattened();
  EXPECT_EQ(flat.num_dims(), 2);
  EXPECT_EQ(flat.dim(0).num_levels(), 1);
  EXPECT_EQ(flat.dim(0).leaf_cardinality(), 100u);
}

TEST(CubeSchemaTest, RejectsBadAggregates) {
  std::vector<Dimension> dims;
  dims.push_back(Dimension::Flat("A", 2));
  EXPECT_FALSE(CubeSchema::Create(std::move(dims), 1, {{AggFn::kSum, 5, "s"}}).ok());
}

TEST(CubeSchemaTest, OrderByDecreasingCardinality) {
  std::vector<Dimension> dims;
  dims.push_back(Dimension::Flat("small", 5));
  dims.push_back(Dimension::Flat("big", 500));
  dims.push_back(Dimension::Flat("mid", 50));
  Result<CubeSchema> schema =
      CubeSchema::Create(std::move(dims), 1, {{AggFn::kSum, 0, "s"}});
  ASSERT_TRUE(schema.ok());
  std::vector<int> perm = schema->OrderByDecreasingCardinality();
  EXPECT_EQ(perm, (std::vector<int>{1, 2, 0}));
  EXPECT_EQ(schema->dim(0).name(), "big");
  EXPECT_EQ(schema->dim(1).name(), "mid");
  EXPECT_EQ(schema->dim(2).name(), "small");
}

TEST(FactTableTest, AppendAndColumns) {
  FactTable table(2, 1);
  const uint32_t d0[] = {1, 2};
  const int64_t m0 = 10;
  table.AppendRow(d0, &m0);
  const uint32_t d1[] = {3, 4};
  const int64_t m1 = 20;
  table.AppendRow(d1, &m1);
  EXPECT_EQ(table.num_rows(), 2u);
  EXPECT_EQ(table.dim(0, 1), 3u);
  EXPECT_EQ(table.measure(0, 0), 10);
  EXPECT_EQ(table.bytes(), 2 * (2 * 4 + 8u));
}

TEST(FactTableTest, RelationRoundTrip) {
  FactTable table(3, 2);
  for (uint32_t i = 0; i < 50; ++i) {
    const uint32_t dims[] = {i, i * 2, i * 3};
    const int64_t ms[] = {static_cast<int64_t>(i), -static_cast<int64_t>(i)};
    table.AppendRow(dims, ms);
  }
  storage::Relation rel = storage::Relation::Memory(table.RecordSize());
  ASSERT_TRUE(table.WriteTo(&rel).ok());
  Result<FactTable> back = FactTable::ReadFrom(rel, 3, 2);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->num_rows(), 50u);
  for (uint32_t i = 0; i < 50; ++i) {
    EXPECT_EQ(back->dim(1, i), i * 2);
    EXPECT_EQ(back->measure(1, i), -static_cast<int64_t>(i));
  }
}

}  // namespace
}  // namespace schema
}  // namespace cure
