#include <gtest/gtest.h>

#include "engine/cure.h"
#include "etl/csv.h"
#include "etl/dictionary.h"
#include "etl/loader.h"
#include "etl/schema_io.h"
#include "query/node_query.h"
#include "query/reference.h"

namespace cure {
namespace etl {
namespace {

TEST(DictionaryTest, EncodeDecodeRoundTrip) {
  Dictionary dict;
  EXPECT_EQ(dict.Encode("alpha"), 0u);
  EXPECT_EQ(dict.Encode("beta"), 1u);
  EXPECT_EQ(dict.Encode("alpha"), 0u);  // idempotent
  EXPECT_EQ(dict.size(), 2u);
  EXPECT_EQ(dict.Decode(1), "beta");
  auto found = dict.Lookup("beta");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, 1u);
  EXPECT_FALSE(dict.Lookup("gamma").ok());
}

TEST(DictionaryTest, SerializeRoundTrip) {
  Dictionary dict;
  dict.Encode("x");
  dict.Encode("hello world");
  dict.Encode("");
  auto back = Dictionary::Deserialize(dict.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), 3u);
  EXPECT_EQ(back->Decode(1), "hello world");
  EXPECT_EQ(back->Decode(2), "");
}

TEST(CsvTest, ParsesSimpleLines) {
  auto fields = ParseCsvLine("a,b,c");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(*fields, (std::vector<std::string>{"a", "b", "c"}));
  fields = ParseCsvLine("one");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(fields->size(), 1u);
  fields = ParseCsvLine("a,,c");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ((*fields)[1], "");
}

TEST(CsvTest, ParsesQuotedFields) {
  auto fields = ParseCsvLine(R"("hello, world",plain,"say ""hi""")");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ((*fields)[0], "hello, world");
  EXPECT_EQ((*fields)[1], "plain");
  EXPECT_EQ((*fields)[2], "say \"hi\"");
}

TEST(CsvTest, RejectsMalformedLines) {
  EXPECT_FALSE(ParseCsvLine("\"unterminated").ok());
  EXPECT_FALSE(ParseCsvLine("ab\"cd").ok());
}

TEST(CsvTest, ParsesDocumentWithCrlfAndBlankLines) {
  auto table = ParseCsv("a,b\r\n1,2\r\n\r\n3,4\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->header, (std::vector<std::string>{"a", "b"}));
  ASSERT_EQ(table->rows.size(), 2u);
  EXPECT_EQ(table->rows[1][1], "4");
  auto col = table->Column("b");
  ASSERT_TRUE(col.ok());
  EXPECT_EQ(*col, 1u);
  EXPECT_FALSE(table->Column("z").ok());
}

TEST(CsvTest, RejectsRaggedRows) {
  EXPECT_FALSE(ParseCsv("a,b\n1,2,3\n").ok());
  EXPECT_FALSE(ParseCsv("").ok());
}

TEST(LoadSpecTest, ParsesFullSpec) {
  auto spec = ParseLoadSpec(
      "# comment\n"
      "dim region city country\n"
      "dim product sku\n"
      "measure price\n"
      "agg sum price\n"
      "agg count\n");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  ASSERT_EQ(spec->dimensions.size(), 2u);
  EXPECT_EQ(spec->dimensions[0].level_columns,
            (std::vector<std::string>{"city", "country"}));
  EXPECT_EQ(spec->measure_columns, (std::vector<std::string>{"price"}));
  ASSERT_EQ(spec->aggregates.size(), 2u);
}

TEST(LoadSpecTest, DefaultAggregates) {
  auto spec = ParseLoadSpec("dim d a\nmeasure m\n");
  ASSERT_TRUE(spec.ok());
  ASSERT_EQ(spec->aggregates.size(), 2u);  // count + sum m
  EXPECT_EQ(spec->aggregates[0].function, "count");
  EXPECT_EQ(spec->aggregates[1].function, "sum");
}

TEST(LoadSpecTest, RejectsBadSpecs) {
  EXPECT_FALSE(ParseLoadSpec("").ok());
  EXPECT_FALSE(ParseLoadSpec("dim\n").ok());
  EXPECT_FALSE(ParseLoadSpec("bogus keyword\n").ok());
  EXPECT_FALSE(ParseLoadSpec("dim d a\nagg sum\n").ok());
}

constexpr char kCsv[] =
    "city,country,sku,cat,price\n"
    "paris,fr,a,food,10\n"
    "lyon,fr,b,tools,20\n"
    "rome,it,a,food,30\n"
    "paris,fr,b,tools,40\n";

constexpr char kSpec[] =
    "dim region city country\n"
    "dim product sku cat\n"
    "measure price\n"
    "agg sum price\n"
    "agg count\n";

TEST(LoaderTest, BuildsSchemaAndTable) {
  auto csv = ParseCsv(kCsv);
  ASSERT_TRUE(csv.ok());
  auto spec = ParseLoadSpec(kSpec);
  ASSERT_TRUE(spec.ok());
  auto loaded = LoadDataset(*csv, *spec);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->table.num_rows(), 4u);
  EXPECT_EQ(loaded->schema.num_dims(), 2);
  EXPECT_EQ(loaded->schema.dim(0).leaf_cardinality(), 3u);  // paris, lyon, rome
  EXPECT_EQ(loaded->schema.dim(0).cardinality(1), 2u);      // fr, it
  // Hierarchy map inferred: paris -> fr, rome -> it.
  const uint32_t paris = *loaded->dictionaries[0][0].Lookup("paris");
  const uint32_t fr = *loaded->dictionaries[0][1].Lookup("fr");
  EXPECT_EQ(loaded->schema.dim(0).CodeAt(paris, 1), fr);
}

TEST(LoaderTest, DetectsFunctionalDependencyViolation) {
  auto csv = ParseCsv(
      "city,country,price\n"
      "paris,fr,1\n"
      "paris,it,2\n");  // paris in two countries
  ASSERT_TRUE(csv.ok());
  auto spec = ParseLoadSpec("dim region city country\nmeasure price\n");
  ASSERT_TRUE(spec.ok());
  auto loaded = LoadDataset(*csv, *spec);
  EXPECT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("functional dependency"),
            std::string::npos);
}

TEST(LoaderTest, RejectsNonIntegerMeasures) {
  auto csv = ParseCsv("a,m\nx,abc\n");
  ASSERT_TRUE(csv.ok());
  auto spec = ParseLoadSpec("dim d a\nmeasure m\n");
  ASSERT_TRUE(spec.ok());
  EXPECT_FALSE(LoadDataset(*csv, *spec).ok());
}

TEST(LoaderTest, RejectsUnknownColumns) {
  auto csv = ParseCsv("a,m\nx,1\n");
  ASSERT_TRUE(csv.ok());
  auto spec = ParseLoadSpec("dim d nosuch\nmeasure m\n");
  ASSERT_TRUE(spec.ok());
  EXPECT_FALSE(LoadDataset(*csv, *spec).ok());
}

TEST(LoaderTest, LoadedCubeAnswersCorrectly) {
  auto csv = ParseCsv(kCsv);
  auto spec = ParseLoadSpec(kSpec);
  ASSERT_TRUE(csv.ok() && spec.ok());
  auto loaded = LoadDataset(*csv, *spec);
  ASSERT_TRUE(loaded.ok());
  engine::CureOptions options;
  engine::FactInput input{.table = &loaded->table};
  auto cube = engine::BuildCure(loaded->schema, input, options);
  ASSERT_TRUE(cube.ok());
  auto engine = query::CureQueryEngine::Create(cube->get(), 1.0);
  ASSERT_TRUE(engine.ok());
  const schema::NodeIdCodec& codec = (*cube)->store().codec();
  for (schema::NodeId id = 0; id < codec.num_nodes(); ++id) {
    query::ResultSink sink(true);
    ASSERT_TRUE((*engine)->QueryNode(id, &sink).ok());
    auto expected = query::ReferenceNodeResult(loaded->schema, loaded->table, id);
    ASSERT_TRUE(expected.ok());
    EXPECT_TRUE(query::SameResults(sink.TakeRows(), std::move(expected).value()));
  }
}

TEST(SchemaIoTest, SerializeDeserializeRoundTrip) {
  auto csv = ParseCsv(kCsv);
  auto spec = ParseLoadSpec(kSpec);
  ASSERT_TRUE(csv.ok() && spec.ok());
  auto loaded = LoadDataset(*csv, *spec);
  ASSERT_TRUE(loaded.ok());
  const std::string text = SerializeSchema(loaded->schema);
  auto back = DeserializeSchema(text);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->num_dims(), loaded->schema.num_dims());
  EXPECT_EQ(back->num_aggregates(), loaded->schema.num_aggregates());
  for (int d = 0; d < back->num_dims(); ++d) {
    EXPECT_EQ(back->dim(d).name(), loaded->schema.dim(d).name());
    EXPECT_EQ(back->dim(d).num_levels(), loaded->schema.dim(d).num_levels());
    for (uint32_t leaf = 0; leaf < back->dim(d).leaf_cardinality(); ++leaf) {
      for (int l = 0; l < back->dim(d).num_levels(); ++l) {
        EXPECT_EQ(back->dim(d).CodeAt(leaf, l),
                  loaded->schema.dim(d).CodeAt(leaf, l));
      }
    }
  }
  EXPECT_FALSE(DeserializeSchema("garbage").ok());
}

TEST(SchemaIoTest, PersistedCubeReopensAndAnswers) {
  auto csv = ParseCsv(kCsv);
  auto spec = ParseLoadSpec(kSpec);
  ASSERT_TRUE(csv.ok() && spec.ok());
  auto loaded = LoadDataset(*csv, *spec);
  ASSERT_TRUE(loaded.ok());
  engine::CureOptions options;
  engine::FactInput input{.table = &loaded->table};
  auto cube = engine::BuildCure(loaded->schema, input, options);
  ASSERT_TRUE(cube.ok());
  ASSERT_TRUE(
      (*cube)->mutable_store().PersistPacked("/tmp/cure_etl_cube.bin").ok());
  auto fact = storage::Relation::CreateFile("/tmp/cure_etl_fact.bin",
                                            loaded->table.RecordSize());
  ASSERT_TRUE(fact.ok());
  ASSERT_TRUE(loaded->table.WriteTo(&fact.value()).ok());
  ASSERT_TRUE(fact->Seal().ok());

  auto reopened = engine::CureCube::OpenPersisted(
      loaded->schema, "/tmp/cure_etl_cube.bin", &fact.value());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto engine = query::CureQueryEngine::Create(reopened->get(), 1.0);
  ASSERT_TRUE(engine.ok());
  const schema::NodeIdCodec& codec = (*reopened)->store().codec();
  for (schema::NodeId id = 0; id < codec.num_nodes(); ++id) {
    query::ResultSink sink(true);
    ASSERT_TRUE((*engine)->QueryNode(id, &sink).ok());
    auto expected = query::ReferenceNodeResult(loaded->schema, loaded->table, id);
    ASSERT_TRUE(expected.ok());
    EXPECT_TRUE(query::SameResults(sink.TakeRows(), std::move(expected).value()));
  }
  ASSERT_TRUE(storage::RemoveFile("/tmp/cure_etl_cube.bin").ok());
  ASSERT_TRUE(storage::RemoveFile("/tmp/cure_etl_fact.bin").ok());
}

}  // namespace
}  // namespace etl
}  // namespace cure
