#include "cube/cube_store.h"

#include <gtest/gtest.h>

#include <cstring>

#include "cube/signature.h"
#include "schema/cube_schema.h"

namespace cure {
namespace cube {
namespace {

using schema::AggFn;
using schema::CubeSchema;
using schema::Dimension;
using schema::NodeId;

CubeSchema TwoDimSchema(int num_aggregates) {
  std::vector<Dimension> dims;
  dims.push_back(Dimension::Flat("A", 10));
  dims.push_back(Dimension::Flat("B", 10));
  std::vector<schema::AggregateSpec> aggs;
  aggs.push_back({AggFn::kSum, 0, "sum"});
  if (num_aggregates > 1) aggs.push_back({AggFn::kCount, 0, "cnt"});
  Result<CubeSchema> schema = CubeSchema::Create(std::move(dims), 1, std::move(aggs));
  EXPECT_TRUE(schema.ok());
  return std::move(schema).value();
}

TEST(CubeStoreTest, RecordWidths) {
  CubeSchema schema = TwoDimSchema(2);
  CubeStore store(&schema, {});
  EXPECT_EQ(store.TtRecordSize(), 8u);
  EXPECT_EQ(store.NtRecordSize(2), 8u + 16u);          // rowid + 2 aggrs
  EXPECT_EQ(store.PlainRecordSize(2), 8u + 16u);       // 2 dims + 2 aggrs
  EXPECT_EQ(store.AggregatesRecordSize(CatFormat::kFormatA), 8u + 16u);
  EXPECT_EQ(store.AggregatesRecordSize(CatFormat::kFormatB), 16u);

  CubeStore dr(&schema, {.dims_in_nt = true});
  EXPECT_EQ(dr.NtRecordSize(2), 8u + 16u);   // 2 dim codes + 2 aggrs
  EXPECT_EQ(dr.NtRecordSize(1), 4u + 16u);
}

TEST(CubeStoreTest, FormatDecisionRule) {
  // Paper rule: format (a) iff k > (Y+1) * n; else as-NT when Y == 1, else
  // format (b).
  {
    CubeSchema schema = TwoDimSchema(2);  // Y = 2
    CubeStore store(&schema, {});
    store.DecideCatFormat({.cats = 100, .source_groups = 10, .combos = 5});
    EXPECT_EQ(store.cat_format(), CatFormat::kFormatA);  // 100 > 3*10
  }
  {
    CubeSchema schema = TwoDimSchema(2);
    CubeStore store(&schema, {});
    store.DecideCatFormat({.cats = 20, .source_groups = 10, .combos = 5});
    EXPECT_EQ(store.cat_format(), CatFormat::kFormatB);  // 20 <= 30
  }
  {
    CubeSchema schema = TwoDimSchema(1);  // Y = 1
    CubeStore store(&schema, {});
    store.DecideCatFormat({.cats = 20, .source_groups = 12, .combos = 5});
    EXPECT_EQ(store.cat_format(), CatFormat::kAsNT);  // 20 <= 2*12, Y=1
  }
  {
    // No CATs yet: decision postponed.
    CubeSchema schema = TwoDimSchema(2);
    CubeStore store(&schema, {});
    store.DecideCatFormat({.cats = 0, .source_groups = 0, .combos = 0});
    EXPECT_EQ(store.cat_format(), CatFormat::kUndecided);
    // First real stats decide; later stats only accumulate.
    store.DecideCatFormat({.cats = 100, .source_groups = 10, .combos = 5});
    EXPECT_EQ(store.cat_format(), CatFormat::kFormatA);
    store.DecideCatFormat({.cats = 10, .source_groups = 10, .combos = 10});
    EXPECT_EQ(store.cat_format(), CatFormat::kFormatA);  // unchanged
    EXPECT_EQ(store.cat_stats().cats, 110u);
  }
}

TEST(CubeStoreTest, ForcedFormatWins) {
  CubeSchema schema = TwoDimSchema(2);
  CubeStore store(&schema, {.forced_cat_format = CatFormat::kFormatB});
  store.DecideCatFormat({.cats = 1000, .source_groups = 1, .combos = 1});
  EXPECT_EQ(store.cat_format(), CatFormat::kFormatB);
}

TEST(CubeStoreTest, WriteAndAccountTuples) {
  CubeSchema schema = TwoDimSchema(2);
  CubeStore store(&schema, {});
  const NodeId node = 0;
  const int64_t aggrs[2] = {5, 1};
  ASSERT_TRUE(store.WriteTT(node, MakeRowId(kSourceFact, 3)).ok());
  ASSERT_TRUE(store.WriteNT(node, MakeRowId(kSourceFact, 4), aggrs, nullptr).ok());
  store.DecideCatFormat({.cats = 100, .source_groups = 10, .combos = 5});
  Result<uint64_t> arowid = store.AppendAggregateA(MakeRowId(kSourceFact, 5), aggrs);
  ASSERT_TRUE(arowid.ok());
  EXPECT_EQ(*arowid, 0u);
  ASSERT_TRUE(store.WriteCatA(node, *arowid).ok());

  const CubeStore::ClassCounts counts = store.Counts();
  EXPECT_EQ(counts.tt, 1u);
  EXPECT_EQ(counts.nt, 1u);
  EXPECT_EQ(counts.cat, 1u);
  EXPECT_EQ(counts.aggregates, 1u);
  EXPECT_EQ(store.NumRelations(), 4u);  // nt + tt + cat + AGGREGATES
  EXPECT_EQ(store.TotalBytes(), 8u + 24u + 8u + 24u);
}

TEST(CubeStoreTest, NodeDecodeCaching) {
  CubeSchema schema = TwoDimSchema(2);
  CubeStore store(&schema, {});
  const schema::NodeIdCodec& codec = store.codec();
  const NodeId ab = codec.Encode({0, 0});
  const int64_t aggrs[2] = {1, 1};
  ASSERT_TRUE(store.WriteNT(ab, MakeRowId(kSourceFact, 0), aggrs, nullptr).ok());
  const CubeStore::NodeData* node = store.node(ab);
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(node->grouping_dims, (std::vector<int>{0, 1}));
  EXPECT_EQ(store.node(codec.Encode({1, 1})), nullptr);
}

// ---------- SignaturePool classification ----------

TEST(SignaturePoolTest, SingletonsBecomeNts) {
  CubeSchema schema = TwoDimSchema(2);
  CubeStore store(&schema, {});
  SignaturePool pool(2, 0, 100);
  const int64_t a1[2] = {10, 2};
  const int64_t a2[2] = {20, 3};
  pool.Add(a1, MakeRowId(kSourceFact, 0), 0, nullptr);
  pool.Add(a2, MakeRowId(kSourceFact, 5), 1, nullptr);
  ASSERT_TRUE(pool.Flush(&store).ok());
  EXPECT_EQ(store.Counts().nt, 2u);
  EXPECT_EQ(store.Counts().cat, 0u);
  EXPECT_EQ(store.cat_format(), CatFormat::kUndecided);
  EXPECT_TRUE(pool.empty());
}

TEST(SignaturePoolTest, CommonSourceCatsUseFormatA) {
  CubeSchema schema = TwoDimSchema(2);
  CubeStore store(&schema, {});
  SignaturePool pool(2, 0, 100);
  // Three signatures sharing aggregates AND rowid (common source), in
  // different nodes — k=3, n=1, Y=2: 3 > (2+1)*1 is false... use 4 copies:
  // k=4 > 3*1 = 3 -> format (a).
  const int64_t a[2] = {30, 2};
  for (NodeId node = 0; node < 4; ++node) {
    pool.Add(a, MakeRowId(kSourceFact, 7), node, nullptr);
  }
  ASSERT_TRUE(pool.Flush(&store).ok());
  EXPECT_EQ(store.cat_format(), CatFormat::kFormatA);
  EXPECT_EQ(store.Counts().cat, 4u);
  EXPECT_EQ(store.Counts().aggregates, 1u);  // shared source group
}

TEST(SignaturePoolTest, CoincidentalCatsUseFormatB) {
  CubeSchema schema = TwoDimSchema(2);
  CubeStore store(&schema, {});
  SignaturePool pool(2, 0, 100);
  // Same aggregates, different rowids: coincidental. k=2, n=2 -> (b).
  const int64_t a[2] = {30, 2};
  pool.Add(a, MakeRowId(kSourceFact, 1), 0, nullptr);
  pool.Add(a, MakeRowId(kSourceFact, 9), 1, nullptr);
  ASSERT_TRUE(pool.Flush(&store).ok());
  EXPECT_EQ(store.cat_format(), CatFormat::kFormatB);
  EXPECT_EQ(store.Counts().cat, 2u);
  EXPECT_EQ(store.Counts().aggregates, 1u);  // one combo row
}

TEST(SignaturePoolTest, CoincidentalSingleAggregateStoredAsNt) {
  CubeSchema schema = TwoDimSchema(1);
  CubeStore store(&schema, {});
  SignaturePool pool(1, 0, 100);
  const int64_t a[1] = {30};
  pool.Add(a, MakeRowId(kSourceFact, 1), 0, nullptr);
  pool.Add(a, MakeRowId(kSourceFact, 9), 1, nullptr);
  ASSERT_TRUE(pool.Flush(&store).ok());
  EXPECT_EQ(store.cat_format(), CatFormat::kAsNT);
  EXPECT_EQ(store.Counts().nt, 2u);
  EXPECT_EQ(store.Counts().cat, 0u);
}

TEST(SignaturePoolTest, FootprintMatchesCapacity) {
  SignaturePool pool(2, 0, 1000);
  EXPECT_EQ(pool.FootprintBytes(), 1000u * (16 + 8 + 8));
  SignaturePool dr_pool(2, 3, 1000);
  EXPECT_EQ(dr_pool.FootprintBytes(), 1000u * (16 + 8 + 8 + 12));
}

TEST(SignaturePoolTest, CapacityIsRespected) {
  SignaturePool pool(1, 0, 2);
  const int64_t a[1] = {1};
  pool.Add(a, 0, 0, nullptr);
  EXPECT_FALSE(pool.full());
  pool.Add(a, 1, 1, nullptr);
  EXPECT_TRUE(pool.full());
  EXPECT_EQ(pool.size(), 2u);
}

// ---------- Post-processing ----------

TEST(PostProcessTest, BitmapReplacesLargeTtLists) {
  CubeSchema schema = TwoDimSchema(2);
  CubeStore store(&schema, {});
  // A fake fact source with a small universe so the bitmap wins:
  // 1000 rows universe = 125 bitmap bytes < 900 TTs * 8 bytes.
  schema::FactTable table(2, 1);
  for (uint32_t i = 0; i < 1000; ++i) {
    const uint32_t dims[2] = {i % 10, i % 7};
    const int64_t m = 1;
    table.AppendRow(dims, &m);
  }
  SourceSet sources(&schema);
  sources.Register(kSourceFact,
                   std::make_shared<FactTableSource>(&table, &schema));
  for (uint64_t i = 0; i < 900; ++i) {
    ASSERT_TRUE(store.WriteTT(0, MakeRowId(kSourceFact, i)).ok());
  }
  const uint64_t before = store.TotalBytes();
  ASSERT_TRUE(store.PostProcess(sources, {.use_bitmaps = true}).ok());
  const CubeStore::NodeData* node = store.node(0);
  ASSERT_NE(node, nullptr);
  EXPECT_NE(node->tt_bitmap, nullptr);
  EXPECT_EQ(node->tt_bitmap->Count(), 900u);
  EXPECT_LT(store.TotalBytes(), before);
}

TEST(PostProcessTest, SmallTtListsStaySortedLists) {
  CubeSchema schema = TwoDimSchema(2);
  CubeStore store(&schema, {});
  schema::FactTable table(2, 1);
  for (uint32_t i = 0; i < 100000; ++i) {
    const uint32_t dims[2] = {0, 0};
    const int64_t m = 1;
    table.AppendRow(dims, &m);
  }
  SourceSet sources(&schema);
  sources.Register(kSourceFact,
                   std::make_shared<FactTableSource>(&table, &schema));
  // 3 TTs over a 100k universe: a bitmap would waste 12.5 KB.
  ASSERT_TRUE(store.WriteTT(0, MakeRowId(kSourceFact, 70000)).ok());
  ASSERT_TRUE(store.WriteTT(0, MakeRowId(kSourceFact, 5)).ok());
  ASSERT_TRUE(store.WriteTT(0, MakeRowId(kSourceFact, 999)).ok());
  ASSERT_TRUE(store.PostProcess(sources, {.use_bitmaps = true}).ok());
  const CubeStore::NodeData* node = store.node(0);
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(node->tt_bitmap, nullptr);
  ASSERT_TRUE(node->has_tt);
  // Row-ids now sorted.
  uint64_t prev = 0;
  storage::Relation::Scanner scan(node->tt);
  while (const uint8_t* rec = scan.Next()) {
    uint64_t r;
    std::memcpy(&r, rec, 8);
    EXPECT_GE(r, prev);
    prev = r;
  }
}

}  // namespace
}  // namespace cube
}  // namespace cure
