#include "gen/datasets.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "gen/random.h"
#include "gen/zipf.h"
#include "schema/node_id.h"

namespace cure {
namespace gen {
namespace {

TEST(RngTest, DeterministicAndSpread) {
  Rng a(1), b(1), c(2);
  EXPECT_EQ(a.NextUint64(), b.NextUint64());
  EXPECT_NE(a.NextUint64(), c.NextUint64());
  // Range sanity.
  Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.NextRange(17), 17u);
    const double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(ZipfTest, ThetaZeroIsRoughlyUniform) {
  ZipfSampler zipf(10, 0.0);
  Rng rng(4);
  std::vector<uint64_t> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Sample(&rng)];
  for (uint64_t c : counts) {
    EXPECT_NEAR(static_cast<double>(c), n / 10.0, n / 10.0 * 0.15);
  }
}

TEST(ZipfTest, HighThetaConcentratesOnSmallCodes) {
  ZipfSampler zipf(1000, 2.0);
  Rng rng(5);
  uint64_t head = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (zipf.Sample(&rng) < 10) ++head;
  }
  // With theta=2, the first 10 of 1000 values carry the vast majority.
  EXPECT_GT(head, static_cast<uint64_t>(0.9 * n));
}

TEST(ZipfTest, SamplesAlwaysInRange) {
  ZipfSampler zipf(7, 1.3);
  Rng rng(6);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(zipf.Sample(&rng), 7u);
}

TEST(SyntheticTest, CardinalityRuleCiEqualsTOverI) {
  SyntheticSpec spec;
  spec.num_dims = 4;
  spec.num_tuples = 1000;
  spec.zipf = 0.5;
  Dataset ds = MakeSynthetic(spec);
  EXPECT_EQ(ds.schema.num_dims(), 4);
  EXPECT_EQ(ds.table.num_rows(), 1000u);
  EXPECT_EQ(ds.schema.dim(0).leaf_cardinality(), 1000u);
  EXPECT_EQ(ds.schema.dim(1).leaf_cardinality(), 500u);
  EXPECT_EQ(ds.schema.dim(2).leaf_cardinality(), 333u);
  EXPECT_EQ(ds.schema.dim(3).leaf_cardinality(), 250u);
  // Values in range.
  for (uint64_t r = 0; r < ds.table.num_rows(); ++r) {
    for (int d = 0; d < 4; ++d) {
      EXPECT_LT(ds.table.dim(d, r), ds.schema.dim(d).leaf_cardinality());
    }
  }
}

TEST(SyntheticTest, SingleAggregateMode) {
  SyntheticSpec spec;
  spec.num_dims = 2;
  spec.num_tuples = 10;
  spec.single_aggregate = true;
  Dataset ds = MakeSynthetic(spec);
  EXPECT_EQ(ds.schema.num_aggregates(), 1);
}

TEST(ApbTest, SchemaMatchesPaper) {
  ApbSpec spec;
  spec.density = 0.1;
  spec.scale_divisor = 1000;
  Dataset ds = MakeApb(spec);
  ASSERT_EQ(ds.schema.num_dims(), 4);
  // Product: Code 6,500 -> ... -> Division 3 (6 levels).
  EXPECT_EQ(ds.schema.dim(0).num_levels(), 6);
  EXPECT_EQ(ds.schema.dim(0).leaf_cardinality(), 6500u);
  EXPECT_EQ(ds.schema.dim(0).cardinality(5), 3u);
  EXPECT_EQ(ds.schema.dim(1).num_levels(), 2);
  EXPECT_EQ(ds.schema.dim(2).num_levels(), 3);
  EXPECT_EQ(ds.schema.dim(3).num_levels(), 1);
  // Total nodes: (6+1)(2+1)(3+1)(1+1) = 168, as the paper computes.
  schema::NodeIdCodec codec(ds.schema);
  EXPECT_EQ(codec.num_nodes(), 168u);
  EXPECT_EQ(ds.schema.num_aggregates(), 2);
}

TEST(ApbTest, DensityControlsRowCount) {
  // density 0.1 at scale 1 would be 1,239,300 rows, exactly as the paper
  // reports for APB-1's lowest density.
  EXPECT_EQ(ApbNumTuples({.density = 0.1, .scale_divisor = 1, .seed = 0}),
            1239300u);
  EXPECT_EQ(ApbNumTuples({.density = 40, .scale_divisor = 1, .seed = 0}),
            495720000u);
  ApbSpec spec;
  spec.density = 0.4;
  spec.scale_divisor = 100;
  Dataset ds = MakeApb(spec);
  EXPECT_EQ(ds.table.num_rows(), ApbNumTuples(spec));
  EXPECT_EQ(ds.table.num_rows(), 49572u);
}

TEST(RealProxyTest, CovTypeShape) {
  Dataset ds = MakeCovTypeProxy(/*row_divisor=*/50);
  EXPECT_EQ(ds.schema.num_dims(), 10);
  EXPECT_EQ(ds.table.num_rows(), 581012u / 50);
  for (uint64_t r = 0; r < ds.table.num_rows(); ++r) {
    for (int d = 0; d < 10; ++d) {
      ASSERT_LT(ds.table.dim(d, r), ds.schema.dim(d).leaf_cardinality());
    }
  }
}

TEST(RealProxyTest, Sep85LShapeAndDenseAreas) {
  Dataset ds = MakeSep85LProxy(/*row_divisor=*/50);
  EXPECT_EQ(ds.schema.num_dims(), 9);
  EXPECT_EQ(ds.table.num_rows(), 1015367u / 50);
  // Dense areas: the most frequent leaf combination of the first two dims
  // appears much more often than uniform would suggest.
  std::map<std::pair<uint32_t, uint32_t>, uint64_t> counts;
  for (uint64_t r = 0; r < ds.table.num_rows(); ++r) {
    ++counts[{ds.table.dim(0, r), ds.table.dim(1, r)}];
  }
  uint64_t max_count = 0;
  for (const auto& [k, v] : counts) max_count = std::max(max_count, v);
  EXPECT_GT(max_count, 5u);
}

TEST(SalesTest, Table1Hierarchy) {
  Dataset ds = MakeSales(1000);
  EXPECT_EQ(ds.schema.dim(0).leaf_cardinality(), 10000u);
  EXPECT_EQ(ds.schema.dim(0).cardinality(1), 1000u);
  EXPECT_EQ(ds.schema.dim(0).cardinality(2), 10u);
  EXPECT_EQ(ds.table.num_rows(), 1000u);
}

TEST(PaperExampleTest, MatchesFig9a) {
  Dataset ds = MakePaperExample();
  ASSERT_EQ(ds.table.num_rows(), 5u);
  EXPECT_EQ(ds.table.dim(0, 2), 1u);
  EXPECT_EQ(ds.table.measure(0, 2), 40);
  EXPECT_EQ(ds.table.measure(0, 4), 45);
}

TEST(DatasetDeterminismTest, SameSeedSameData) {
  SyntheticSpec spec;
  spec.num_dims = 3;
  spec.num_tuples = 100;
  spec.seed = 77;
  Dataset a = MakeSynthetic(spec);
  Dataset b = MakeSynthetic(spec);
  for (uint64_t r = 0; r < 100; ++r) {
    for (int d = 0; d < 3; ++d) EXPECT_EQ(a.table.dim(d, r), b.table.dim(d, r));
    EXPECT_EQ(a.table.measure(0, r), b.table.measure(0, r));
  }
}

}  // namespace
}  // namespace gen
}  // namespace cure
