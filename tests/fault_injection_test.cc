#include <gtest/gtest.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "storage/fault_injection.h"
#include "storage/file_io.h"

namespace cure {
namespace {

using storage::FaultInjector;
using storage::FaultPlan;
using storage::FileReader;
using storage::FileWriter;
using storage::ScopedFaultInjection;

std::string TestPath(const char* tag) {
  return "/tmp/cure_fault_injection_" + std::to_string(::getpid()) + "_" +
         tag + ".bin";
}

// Writes `payload` with a small buffer so multiple write() calls happen.
Status WriteFile(const std::string& path, const std::string& payload,
                 size_t buffer = 16) {
  FileWriter writer;
  CURE_RETURN_IF_ERROR(writer.Open(path, buffer));
  CURE_RETURN_IF_ERROR(writer.Append(payload.data(), payload.size()));
  CURE_RETURN_IF_ERROR(writer.Sync());
  return writer.Close();
}

Result<std::string> ReadFileBack(const std::string& path, size_t len) {
  FileReader reader;
  CURE_RETURN_IF_ERROR(reader.Open(path));
  std::string out(len, '\0');
  CURE_RETURN_IF_ERROR(reader.ReadAt(0, out.data(), len));
  CURE_RETURN_IF_ERROR(reader.Close());
  return out;
}

TEST(FaultInjectionTest, DisarmedInjectorIsInert) {
  const std::string path = TestPath("inert");
  ASSERT_FALSE(FaultInjector::Instance().armed());
  ASSERT_TRUE(WriteFile(path, "hello fault world").ok());
  auto back = ReadFileBack(path, 17);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, "hello fault world");
  ASSERT_TRUE(storage::RemoveFile(path).ok());
}

TEST(FaultInjectionTest, CountingModeCountsWithoutFiring) {
  const std::string path = TestPath("count");
  FaultPlan plan;
  plan.op = "write";
  plan.fail_index = UINT64_MAX;  // Pure counter.
  {
    ScopedFaultInjection fault(plan);
    ASSERT_TRUE(WriteFile(path, std::string(100, 'x')).ok());
    EXPECT_GE(fault.ops_matched(), 1u);
    EXPECT_EQ(fault.faults_injected(), 0u);
  }
  EXPECT_FALSE(FaultInjector::Instance().armed());
  ASSERT_TRUE(storage::RemoveFile(path).ok());
}

TEST(FaultInjectionTest, StickyWriteFaultFailsTheWorkload) {
  const std::string path = TestPath("sticky");
  FaultPlan plan;
  plan.op = "write";
  plan.path_substr = path;
  plan.error = EIO;
  ScopedFaultInjection fault(plan);
  const Status s = WriteFile(path, std::string(64, 'y'));
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_GE(fault.faults_injected(), 1u);
  (void)storage::RemoveFile(path);
}

TEST(FaultInjectionTest, OnceFaultFailsThenRecovers) {
  const std::string path = TestPath("once");
  FaultPlan plan;
  plan.op = "open";
  plan.path_substr = path;
  plan.error = EACCES;
  plan.once = true;
  ScopedFaultInjection fault(plan);
  FileWriter writer;
  const Status first = writer.Open(path);
  EXPECT_FALSE(first.ok());
  // The same call retried succeeds: the fault was transient.
  ASSERT_TRUE(writer.Open(path).ok());
  ASSERT_TRUE(writer.Append("ok", 2).ok());
  ASSERT_TRUE(writer.Close().ok());
  EXPECT_EQ(fault.faults_injected(), 1u);
  ASSERT_TRUE(storage::RemoveFile(path).ok());
}

TEST(FaultInjectionTest, FailIndexSkipsEarlierOps) {
  const std::string path = TestPath("index");
  FaultPlan plan;
  plan.op = "fsync";
  plan.path_substr = path;
  plan.fail_index = 1;  // First fsync succeeds, second fails.
  plan.error = EIO;
  ScopedFaultInjection fault(plan);
  FileWriter writer;
  ASSERT_TRUE(writer.Open(path).ok());
  ASSERT_TRUE(writer.Append("a", 1).ok());
  EXPECT_TRUE(writer.Sync().ok());
  ASSERT_TRUE(writer.Append("b", 1).ok());
  EXPECT_FALSE(writer.Sync().ok());
  (void)writer.Close();
  EXPECT_EQ(fault.ops_matched(), 2u);
  EXPECT_EQ(fault.faults_injected(), 1u);
  (void)storage::RemoveFile(path);
}

TEST(FaultInjectionTest, ShortWritesSucceedByteIdentically) {
  const std::string reference_path = TestPath("short_ref");
  const std::string path = TestPath("short");
  std::string payload;
  for (int i = 0; i < 997; ++i) payload.push_back(static_cast<char>(i % 251));
  ASSERT_TRUE(WriteFile(reference_path, payload).ok());
  {
    // Every write truncated to half its length, no errno: the kernel-style
    // short write the Flush loop must absorb.
    FaultPlan plan;
    plan.op = "write";
    plan.path_substr = path;
    plan.short_fraction = 0.5;
    ScopedFaultInjection fault(plan);
    ASSERT_TRUE(WriteFile(path, payload).ok());
    EXPECT_GE(fault.faults_injected(), 2u);
  }
  auto got = ReadFileBack(path, payload.size());
  auto want = ReadFileBack(reference_path, payload.size());
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(*got, *want);
  ASSERT_TRUE(storage::RemoveFile(path).ok());
  ASSERT_TRUE(storage::RemoveFile(reference_path).ok());
}

TEST(FaultInjectionTest, EnospcGetsActionableMessage) {
  const std::string path = TestPath("enospc");
  FaultPlan plan;
  plan.op = "write";
  plan.path_substr = path;
  plan.error = ENOSPC;
  ScopedFaultInjection fault(plan);
  const Status s = WriteFile(path, std::string(64, 'z'));
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_NE(s.message().find("device out of space"), std::string::npos)
      << s.ToString();
  (void)storage::RemoveFile(path);
}

TEST(FaultInjectionTest, PathSubstringScopesTheFault) {
  const std::string victim = TestPath("scoped_victim");
  const std::string bystander = TestPath("scoped_bystander");
  FaultPlan plan;
  plan.op = "write";
  plan.path_substr = "scoped_victim";
  plan.error = EIO;
  ScopedFaultInjection fault(plan);
  EXPECT_FALSE(WriteFile(victim, "doomed").ok());
  EXPECT_TRUE(WriteFile(bystander, "fine").ok());
  (void)storage::RemoveFile(victim);
  ASSERT_TRUE(storage::RemoveFile(bystander).ok());
}

// Exercised under TSan in CI: pool threads hammer the armed injector while
// the main thread reads counters and re-arms.
TEST(FaultInjectionTest, ConcurrentConsultsAreRaceFree) {
  FaultPlan plan;
  plan.op = "write";
  plan.fail_index = UINT64_MAX;
  FaultInjector::Instance().Arm(plan);
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      const std::string path = "/tmp/thread_" + std::to_string(t);
      for (int i = 0; i < kOpsPerThread; ++i) {
        size_t len = 64;
        FaultInjector::Instance().ConsultWrite(path, &len);
        FaultInjector::Instance().Consult("read", path);
      }
    });
  }
  for (int i = 0; i < 50; ++i) {
    (void)FaultInjector::Instance().ops_matched();
    (void)FaultInjector::Instance().armed();
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(FaultInjector::Instance().ops_matched(),
            static_cast<uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_EQ(FaultInjector::Instance().faults_injected(), 0u);
  FaultInjector::Instance().Disarm();
}

}  // namespace
}  // namespace cure
