#include "engine/cure.h"

#include <gtest/gtest.h>

#include "gen/datasets.h"
#include "gen/random.h"
#include "query/node_query.h"
#include "query/reference.h"
#include "schema/lattice.h"
#include "storage/file_io.h"

namespace cure {
namespace {

using engine::BuildCure;
using engine::CureCube;
using engine::CureOptions;
using engine::FactInput;
using gen::Dataset;
using query::ResultSink;
using schema::NodeId;

// Queries every lattice node of `cube` and compares against the brute-force
// reference over `ds.table` (using the cube's own — possibly flattened —
// schema for the reference as well).
void ExpectCubeMatchesReference(const CureCube& cube, const Dataset& ds,
                                uint64_t min_support = 1,
                                double cache_fraction = 1.0) {
  Result<std::unique_ptr<query::CureQueryEngine>> engine =
      query::CureQueryEngine::Create(&cube, cache_fraction);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  const schema::NodeIdCodec& codec = cube.store().codec();
  for (NodeId id = 0; id < codec.num_nodes(); ++id) {
    ResultSink sink(/*retain=*/true);
    Status s = (*engine)->QueryNode(id, &sink);
    ASSERT_TRUE(s.ok()) << s.ToString();
    Result<std::vector<ResultSink::Row>> expected =
        query::ReferenceNodeResult(cube.schema(), ds.table, id, min_support);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();
    EXPECT_TRUE(query::SameResults(sink.TakeRows(), std::move(expected).value()))
        << "node " << codec.Name(id, cube.schema()) << " (id " << id
        << ") mismatch";
  }
}

// ---------- The paper's worked example (Fig. 9) ----------

TEST(CurePaperExampleTest, ClassifiesFig9Tuples) {
  Dataset ds = gen::MakePaperExample();
  CureOptions options;
  FactInput input{.table = &ds.table};
  Result<std::unique_ptr<CureCube>> cube = BuildCure(ds.schema, input, options);
  ASSERT_TRUE(cube.ok()) << cube.status().ToString();
  const engine::BuildStats& stats = (*cube)->stats();

  // Fig. 9b analysis with one aggregate (SUM):
  //  * All cube tuples with A = 2 are TTs from the single tuple
  //    <2,2,3,40>; similarly the base tuples themselves are TTs. The paper
  //    marks tuple <3,90> in node A as the only NT... with Y = 1 and
  //    coincidental CATs the rule stores CATs as NTs, so here we only check
  //    structural invariants:
  EXPECT_GT(stats.tt, 0u);
  EXPECT_GT(stats.nt + stats.cat, 0u);
  // Every cube tuple is accounted for exactly once across all classes:
  // query results match the reference on all 8 nodes.
  ExpectCubeMatchesReference(**cube, ds);
}

TEST(CurePaperExampleTest, TrivialTupleSharedAcrossSubtree) {
  Dataset ds = gen::MakePaperExample();
  CureOptions options;
  FactInput input{.table = &ds.table};
  Result<std::unique_ptr<CureCube>> cube = BuildCure(ds.schema, input, options);
  ASSERT_TRUE(cube.ok());
  // The single tuple <2,2,3,40> (0-based <1,1,2,40>) is trivial at node A —
  // the least detailed node with A grouped — and must be stored exactly once
  // there, covering A, AB, AC and ABC.
  const schema::NodeIdCodec& codec = (*cube)->store().codec();
  const NodeId node_a = codec.Encode({0, 1, 1});  // A grouped, B/C at ALL
  const cube::CubeStore::NodeData* a_data = (*cube)->store().node(node_a);
  ASSERT_NE(a_data, nullptr);
  ASSERT_TRUE(a_data->has_tt);
  EXPECT_EQ(a_data->tt.num_rows(), 1u);
  // The more detailed nodes must NOT duplicate it.
  const NodeId node_ab = codec.Encode({0, 0, 1});
  const cube::CubeStore::NodeData* ab_data = (*cube)->store().node(node_ab);
  if (ab_data != nullptr && ab_data->has_tt) {
    storage::Relation::Scanner scan(ab_data->tt);
    while (const uint8_t* rec = scan.Next()) {
      cube::RowId rowid;
      memcpy(&rowid, rec, 8);
      EXPECT_NE(cube::RowIdOrdinal(rowid), 2u)
          << "TT for fact row 2 duplicated in node AB";
    }
  }
}

// ---------- Randomized equivalence sweeps ----------

struct SweepParam {
  int num_dims;
  uint64_t tuples;
  double zipf;
  uint32_t card;
  const char* label;
};

class CureSweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(CureSweepTest, FlatCubeMatchesReference) {
  const SweepParam& p = GetParam();
  gen::SyntheticSpec spec;
  spec.num_dims = p.num_dims;
  spec.num_tuples = p.tuples;
  spec.zipf = p.zipf;
  spec.cardinalities.assign(p.num_dims, p.card);
  spec.seed = 1234 + p.num_dims;
  Dataset ds = gen::MakeSynthetic(spec);
  CureOptions options;
  options.signature_pool_capacity = 4096;
  FactInput input{.table = &ds.table};
  Result<std::unique_ptr<CureCube>> cube = BuildCure(ds.schema, input, options);
  ASSERT_TRUE(cube.ok()) << cube.status().ToString();
  ExpectCubeMatchesReference(**cube, ds);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CureSweepTest,
    ::testing::Values(SweepParam{2, 200, 0.0, 8, "d2"},
                      SweepParam{3, 300, 0.5, 6, "d3"},
                      SweepParam{4, 500, 1.0, 5, "d4_skew"},
                      SweepParam{5, 400, 2.0, 4, "d5_highskew"},
                      SweepParam{3, 50, 0.0, 50, "sparse_many_tts"},
                      SweepParam{2, 500, 1.5, 2, "dense_tiny_domain"}),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return info.param.label;
    });

// Hierarchical schema helper.
Dataset MakeHierarchicalDataset(uint64_t tuples, uint64_t seed) {
  Dataset ds;
  std::vector<schema::Dimension> dims;
  dims.push_back(schema::Dimension::Linear("A", {24, 6, 2}));
  dims.push_back(schema::Dimension::Linear("B", {10, 3}));
  dims.push_back(schema::Dimension::Flat("C", 5));
  Result<schema::CubeSchema> schema = schema::CubeSchema::Create(
      std::move(dims), 1,
      {{schema::AggFn::kSum, 0, "sum"}, {schema::AggFn::kCount, 0, "cnt"}});
  EXPECT_TRUE(schema.ok());
  ds.schema = std::move(schema).value();
  ds.table = schema::FactTable(3, 1);
  gen::Rng rng(seed);
  for (uint64_t t = 0; t < tuples; ++t) {
    const uint32_t dims_row[3] = {static_cast<uint32_t>(rng.NextRange(24)),
                                  static_cast<uint32_t>(rng.NextRange(10)),
                                  static_cast<uint32_t>(rng.NextRange(5))};
    const int64_t m = static_cast<int64_t>(rng.NextRange(100));
    ds.table.AppendRow(dims_row, &m);
  }
  ds.name = "hier_test";
  return ds;
}

TEST(CureHierarchicalTest, HierarchicalCubeMatchesReference) {
  Dataset ds = MakeHierarchicalDataset(600, 99);
  CureOptions options;
  options.signature_pool_capacity = 1024;
  FactInput input{.table = &ds.table};
  Result<std::unique_ptr<CureCube>> cube = BuildCure(ds.schema, input, options);
  ASSERT_TRUE(cube.ok()) << cube.status().ToString();
  // 4 * 3 * 2 = 24 lattice nodes, all checked.
  ExpectCubeMatchesReference(**cube, ds);
}

TEST(CureHierarchicalTest, CurePlusMatchesReference) {
  Dataset ds = MakeHierarchicalDataset(600, 100);
  CureOptions options;
  FactInput input{.table = &ds.table};
  Result<std::unique_ptr<CureCube>> cube = BuildCure(ds.schema, input, options);
  ASSERT_TRUE(cube.ok());
  const uint64_t before = (*cube)->TotalBytes();
  ASSERT_TRUE(engine::CurePostProcess(cube->get(), /*use_bitmaps=*/true).ok());
  // Post-processing may only shrink or keep the size (bitmaps only when
  // smaller).
  EXPECT_LE((*cube)->TotalBytes(), before);
  ExpectCubeMatchesReference(**cube, ds);
}

TEST(CureHierarchicalTest, CureDrMatchesReference) {
  Dataset ds = MakeHierarchicalDataset(600, 101);
  CureOptions options;
  options.dims_in_nt = true;  // CURE_DR
  FactInput input{.table = &ds.table};
  Result<std::unique_ptr<CureCube>> cube = BuildCure(ds.schema, input, options);
  ASSERT_TRUE(cube.ok());
  ExpectCubeMatchesReference(**cube, ds);
}

TEST(CureHierarchicalTest, FcureFlatCubeMatchesFlattenedReference) {
  Dataset ds = MakeHierarchicalDataset(500, 102);
  CureOptions options;
  options.flat = true;  // FCURE
  FactInput input{.table = &ds.table};
  Result<std::unique_ptr<CureCube>> cube = BuildCure(ds.schema, input, options);
  ASSERT_TRUE(cube.ok());
  EXPECT_EQ(cube->get()->store().codec().num_nodes(), 8u);  // 2^3 flat nodes
  ExpectCubeMatchesReference(**cube, ds);
}

TEST(CureHierarchicalTest, TinyPoolStillCorrect) {
  Dataset ds = MakeHierarchicalDataset(400, 103);
  CureOptions options;
  options.signature_pool_capacity = 1;  // Degenerate: every tuple flushes.
  FactInput input{.table = &ds.table};
  Result<std::unique_ptr<CureCube>> cube = BuildCure(ds.schema, input, options);
  ASSERT_TRUE(cube.ok());
  EXPECT_GT((*cube)->stats().signature_flushes, 1u);
  ExpectCubeMatchesReference(**cube, ds);
}

TEST(CureHierarchicalTest, PoolSizeAffectsSizeNotCorrectness) {
  Dataset ds = MakeHierarchicalDataset(800, 104);
  uint64_t tiny_pool_bytes = 0;
  uint64_t big_pool_bytes = 0;
  for (size_t cap : {size_t{2}, size_t{1} << 20}) {
    CureOptions options;
    options.signature_pool_capacity = cap;
    FactInput input{.table = &ds.table};
    Result<std::unique_ptr<CureCube>> cube = BuildCure(ds.schema, input, options);
    ASSERT_TRUE(cube.ok());
    ExpectCubeMatchesReference(**cube, ds);
    if (cap == 2) {
      tiny_pool_bytes = (*cube)->TotalBytes();
    } else {
      big_pool_bytes = (*cube)->TotalBytes();
    }
  }
  // An unbounded pool identifies at least as much redundancy.
  EXPECT_LE(big_pool_bytes, tiny_pool_bytes);
}

// ---------- Iceberg cubes ----------

TEST(CureIcebergTest, MinSupportPrunes) {
  Dataset ds = MakeHierarchicalDataset(600, 105);
  CureOptions options;
  options.min_support = 3;
  FactInput input{.table = &ds.table};
  Result<std::unique_ptr<CureCube>> cube = BuildCure(ds.schema, input, options);
  ASSERT_TRUE(cube.ok());
  EXPECT_EQ((*cube)->stats().tt, 0u);  // No TTs in an iceberg cube.
  ExpectCubeMatchesReference(**cube, ds, /*min_support=*/3);
}

TEST(CureIcebergTest, IcebergSmallerThanComplete) {
  Dataset ds = MakeHierarchicalDataset(600, 106);
  uint64_t complete_bytes = 0;
  uint64_t iceberg_bytes = 0;
  for (uint64_t minsup : {uint64_t{1}, uint64_t{5}}) {
    CureOptions options;
    options.min_support = minsup;
    FactInput input{.table = &ds.table};
    Result<std::unique_ptr<CureCube>> cube = BuildCure(ds.schema, input, options);
    ASSERT_TRUE(cube.ok());
    (minsup == 1 ? complete_bytes : iceberg_bytes) = (*cube)->TotalBytes();
  }
  EXPECT_LT(iceberg_bytes, complete_bytes);
}

// ---------- External (partitioned) construction ----------

TEST(CureExternalTest, ForcedExternalMatchesInMemory) {
  Dataset ds = MakeHierarchicalDataset(700, 107);
  storage::Relation rel = storage::Relation::Memory(ds.table.RecordSize());
  ASSERT_TRUE(ds.table.WriteTo(&rel).ok());

  CureOptions options;
  options.force_external = true;
  options.memory_budget_bytes = 12288;  // Tiny: several partitions.
  options.signature_pool_capacity = 512;
  FactInput input{.relation = &rel};
  Result<std::unique_ptr<CureCube>> cube = BuildCure(ds.schema, input, options);
  ASSERT_TRUE(cube.ok()) << cube.status().ToString();
  EXPECT_TRUE((*cube)->stats().external);
  EXPECT_GE((*cube)->stats().partition_level, 0);
  EXPECT_GT((*cube)->stats().num_partitions, 1u);
  EXPECT_GT((*cube)->stats().n_rows, 0u);
  ExpectCubeMatchesReference(**cube, ds);
}

TEST(CureExternalTest, ExternalFromFileRelation) {
  Dataset ds = MakeHierarchicalDataset(900, 108);
  const std::string path = "/tmp/cure_test_fact.bin";
  Result<storage::Relation> rel =
      storage::Relation::CreateFile(path, ds.table.RecordSize());
  ASSERT_TRUE(rel.ok());
  ASSERT_TRUE(ds.table.WriteTo(&rel.value()).ok());
  ASSERT_TRUE(rel->Seal().ok());

  CureOptions options;
  options.memory_budget_bytes = 8192;  // Smaller than the fact relation.
  FactInput input{.relation = &rel.value()};
  Result<std::unique_ptr<CureCube>> cube = BuildCure(ds.schema, input, options);
  ASSERT_TRUE(cube.ok()) << cube.status().ToString();
  EXPECT_TRUE((*cube)->stats().external);
  // Query through the file-backed source with partial caching.
  ExpectCubeMatchesReference(**cube, ds, 1, /*cache_fraction=*/0.3);
  ASSERT_TRUE(storage::RemoveFile(path).ok());
}

TEST(CureExternalTest, ExternalPlusDrAndPostProcess) {
  Dataset ds = MakeHierarchicalDataset(800, 109);
  storage::Relation rel = storage::Relation::Memory(ds.table.RecordSize());
  ASSERT_TRUE(ds.table.WriteTo(&rel).ok());
  CureOptions options;
  options.force_external = true;
  options.memory_budget_bytes = 8192;
  options.dims_in_nt = true;
  FactInput input{.relation = &rel};
  Result<std::unique_ptr<CureCube>> cube = BuildCure(ds.schema, input, options);
  ASSERT_TRUE(cube.ok()) << cube.status().ToString();
  ASSERT_TRUE(engine::CurePostProcess(cube->get()).ok());
  ExpectCubeMatchesReference(**cube, ds);
}

// ---------- Plan-style ablation ----------

TEST(CurePlanStyleTest, ShortPlanProducesSameCubeContents) {
  Dataset ds = MakeHierarchicalDataset(500, 110);
  CureOptions tall;
  CureOptions short_plan;
  short_plan.plan_style = plan::ExecutionPlan::Style::kShort;
  FactInput input{.table = &ds.table};
  Result<std::unique_ptr<CureCube>> cube_tall = BuildCure(ds.schema, input, tall);
  Result<std::unique_ptr<CureCube>> cube_short =
      BuildCure(ds.schema, input, short_plan);
  ASSERT_TRUE(cube_tall.ok());
  ASSERT_TRUE(cube_short.ok());
  // Same logical cube: identical non-trivial groups. Stored TT entries can
  // only grow with the short plan (smaller shared sub-trees, Sec. 5.1).
  const engine::BuildStats& a = (*cube_tall)->stats();
  const engine::BuildStats& b = (*cube_short)->stats();
  EXPECT_EQ(a.nt + a.cat, b.nt + b.cat);
  EXPECT_LE(a.tt, b.tt);
}

// ---------- CAT format forcing ----------

TEST(CureCatFormatTest, AllFormatsAnswerQueriesCorrectly) {
  Dataset ds = MakeHierarchicalDataset(500, 111);
  for (cube::CatFormat format :
       {cube::CatFormat::kFormatA, cube::CatFormat::kFormatB,
        cube::CatFormat::kAsNT}) {
    CureOptions options;
    options.forced_cat_format = format;
    FactInput input{.table = &ds.table};
    Result<std::unique_ptr<CureCube>> cube = BuildCure(ds.schema, input, options);
    ASSERT_TRUE(cube.ok()) << cube.status().ToString();
    ExpectCubeMatchesReference(**cube, ds);
  }
}

}  // namespace
}  // namespace cure
