// Differential property tests of the columnar batch scan path (DESIGN.md
// §13): the block size is a pure performance knob. For every batch_rows
// setting — scalar reference (1), a tiny odd size (3), and realistic block
// sizes (64, 1024) — over memory- and file-backed fact relations of skewed
// (Zipf) data, the build must produce byte-identical packed cubes and the
// readers identical (count, checksum) query results.

#include <gtest/gtest.h>
#include <unistd.h>

#include <fstream>
#include <string>
#include <vector>

#include "engine/buc.h"
#include "engine/bubst.h"
#include "engine/cure.h"
#include "engine/partition.h"
#include "gen/datasets.h"
#include "gen/random.h"
#include "gen/zipf.h"
#include "query/node_query.h"
#include "schema/node_id.h"
#include "storage/file_io.h"

namespace cure {
namespace {

using engine::BuildCure;
using engine::CureCube;
using engine::CureOptions;
using engine::FactInput;
using gen::Dataset;
using query::CureQueryEngine;
using query::ResultSink;
using schema::NodeId;

const size_t kBatchMatrix[] = {1, 3, 64, 1024};

// Hierarchical Zipf dataset: skewed first dimension (exercises the counting
// sort under skew), one SUM and one COUNT aggregate.
Dataset MakeZipfDataset(uint64_t tuples, uint64_t seed) {
  Dataset ds;
  std::vector<schema::Dimension> dims;
  dims.push_back(schema::Dimension::Linear("A", {48, 4, 2}));
  dims.push_back(schema::Dimension::Linear("B", {10, 3}));
  dims.push_back(schema::Dimension::Flat("C", 5));
  Result<schema::CubeSchema> schema = schema::CubeSchema::Create(
      std::move(dims), 1,
      {{schema::AggFn::kSum, 0, "sum"}, {schema::AggFn::kCount, 0, "cnt"}});
  EXPECT_TRUE(schema.ok());
  ds.schema = std::move(schema).value();
  ds.table = schema::FactTable(3, 1);
  gen::Rng rng(seed);
  gen::ZipfSampler zipf_a(48, 0.9);
  gen::ZipfSampler zipf_b(10, 0.5);
  for (uint64_t t = 0; t < tuples; ++t) {
    const uint32_t dims_row[3] = {zipf_a.Sample(&rng), zipf_b.Sample(&rng),
                                  static_cast<uint32_t>(rng.NextRange(5))};
    const int64_t m = static_cast<int64_t>(rng.NextRange(40));
    ds.table.AppendRow(dims_row, &m);
  }
  return ds;
}

std::string TempPath(const std::string& name) {
  return "/tmp/cure_batch_scan_" + std::to_string(::getpid()) + "_" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

Result<storage::Relation> MakeFileRelation(const Dataset& ds,
                                           const std::string& path) {
  CURE_ASSIGN_OR_RETURN(storage::Relation rel, storage::Relation::CreateFile(
                                                   path, ds.table.RecordSize()));
  CURE_RETURN_IF_ERROR(ds.table.WriteTo(&rel));
  CURE_RETURN_IF_ERROR(rel.Seal());
  return rel;
}

// Builds with the given batch_rows, persists the packed store, returns its
// bytes.
std::string BuildAndPack(const Dataset& ds, const storage::Relation& rel,
                         CureOptions options, size_t batch_rows) {
  options.batch_rows = batch_rows;
  FactInput input{.relation = &rel};
  Result<std::unique_ptr<CureCube>> cube = BuildCure(ds.schema, input, options);
  EXPECT_TRUE(cube.ok()) << cube.status().ToString();
  if (!cube.ok()) return "";
  const std::string path =
      TempPath("pack_b" + std::to_string(batch_rows) + ".bin");
  Status s = (*cube)->store().PersistPacked(path);
  EXPECT_TRUE(s.ok()) << s.ToString();
  std::string bytes = ReadFileBytes(path);
  EXPECT_TRUE(storage::RemoveFile(path).ok());
  return bytes;
}

TEST(BatchScanBuildTest, ByteIdenticalPackedCubesMemoryBacked) {
  Dataset ds = MakeZipfDataset(3000, 101);
  storage::Relation rel = storage::Relation::Memory(ds.table.RecordSize());
  ASSERT_TRUE(ds.table.WriteTo(&rel).ok());
  for (bool dims_in_nt : {false, true}) {
    CureOptions options;
    options.dims_in_nt = dims_in_nt;
    const std::string reference = BuildAndPack(ds, rel, options, 1);
    ASSERT_FALSE(reference.empty());
    for (size_t batch : kBatchMatrix) {
      if (batch == 1) continue;
      const std::string packed = BuildAndPack(ds, rel, options, batch);
      ASSERT_EQ(packed.size(), reference.size())
          << "batch_rows=" << batch << " dims_in_nt=" << dims_in_nt;
      EXPECT_TRUE(packed == reference)
          << "packed cube differs from the scalar reference at batch_rows="
          << batch << " dims_in_nt=" << dims_in_nt;
    }
  }
}

TEST(BatchScanBuildTest, ByteIdenticalPackedCubesFileBackedExternal) {
  Dataset ds = MakeZipfDataset(4000, 202);
  const std::string rel_path = TempPath("fact.bin");
  Result<storage::Relation> rel = MakeFileRelation(ds, rel_path);
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();

  CureOptions options;
  options.force_external = true;  // partition + per-partition + node-N path
  // Large enough for the Zipf-skewed heaviest leaf partition to fit, small
  // enough that the build still splits into several partitions.
  options.memory_budget_bytes = 96 * 1024;
  options.signature_pool_capacity = 256;
  const std::string reference = BuildAndPack(ds, rel.value(), options, 1);
  ASSERT_FALSE(reference.empty());
  for (size_t batch : kBatchMatrix) {
    if (batch == 1) continue;
    const std::string packed = BuildAndPack(ds, rel.value(), options, batch);
    ASSERT_EQ(packed.size(), reference.size()) << "batch_rows=" << batch;
    EXPECT_TRUE(packed == reference)
        << "packed cube differs from the scalar reference at batch_rows="
        << batch;
  }
  ASSERT_TRUE(storage::RemoveFile(rel_path).ok());
}

TEST(BatchScanBuildTest, LevelHistogramsIdenticalAcrossBatchRows) {
  Dataset ds = MakeZipfDataset(2500, 303);
  const std::string rel_path = TempPath("hist.bin");
  Result<storage::Relation> rel = MakeFileRelation(ds, rel_path);
  ASSERT_TRUE(rel.ok());
  Result<std::vector<std::vector<uint64_t>>> reference =
      engine::ComputeLevelHistograms(rel.value(), ds.schema, 1);
  ASSERT_TRUE(reference.ok());
  for (size_t batch : kBatchMatrix) {
    if (batch == 1) continue;
    Result<std::vector<std::vector<uint64_t>>> hist =
        engine::ComputeLevelHistograms(rel.value(), ds.schema, batch);
    ASSERT_TRUE(hist.ok());
    EXPECT_EQ(hist.value(), reference.value()) << "batch_rows=" << batch;
  }
  ASSERT_TRUE(storage::RemoveFile(rel_path).ok());
}

// Runs plain, iceberg, sliced, and sliced-iceberg queries over every lattice
// node and folds (count, checksum) of each into one digest.
std::pair<uint64_t, uint64_t> QueryDigest(const CureQueryEngine& eng,
                                          const schema::CubeSchema& schema) {
  const schema::NodeIdCodec codec(schema);
  uint64_t count = 0, checksum = 0;
  ResultSink sink;
  const std::vector<CureQueryEngine::Slice> slices = {{0, 1, 1}};
  for (NodeId id = 0; id < codec.num_nodes(); ++id) {
    sink.Reset();
    EXPECT_TRUE(eng.QueryNode(id, &sink).ok());
    count += sink.count();
    checksum ^= sink.checksum();
    sink.Reset();
    EXPECT_TRUE(eng.QueryNodeCountIceberg(id, 1, 3, &sink).ok());
    count += sink.count();
    checksum ^= sink.checksum();
    // Slices are only valid on nodes grouping dim 0 at level <= 1; both
    // engines must agree on the rejection too.
    sink.Reset();
    Status s = eng.QueryNodeSliced(id, slices, &sink);
    if (s.ok()) {
      count += sink.count();
      checksum ^= sink.checksum();
    }
    sink.Reset();
    Status si = eng.QueryNodeSlicedIceberg(id, slices, 1, 2, &sink);
    EXPECT_EQ(s.ok(), si.ok());
    if (si.ok()) {
      count += sink.count();
      checksum ^= sink.checksum();
    }
  }
  return {count, checksum};
}

TEST(BatchScanQueryTest, IdenticalResultsAcrossBatchRowsInMemory) {
  Dataset ds = MakeZipfDataset(3000, 404);
  for (bool dims_in_nt : {false, true}) {
    CureOptions options;
    options.dims_in_nt = dims_in_nt;
    FactInput input{.table = &ds.table};
    Result<std::unique_ptr<CureCube>> cube =
        BuildCure(ds.schema, input, options);
    ASSERT_TRUE(cube.ok()) << cube.status().ToString();
    Result<std::unique_ptr<CureQueryEngine>> eng =
        CureQueryEngine::Create(cube->get(), 1.0);
    ASSERT_TRUE(eng.ok());
    (*eng)->set_batch_rows(1);
    const auto reference = QueryDigest(**eng, (*cube)->schema());
    ASSERT_GT(reference.first, 0u);
    for (size_t batch : kBatchMatrix) {
      if (batch == 1) continue;
      (*eng)->set_batch_rows(batch);
      EXPECT_EQ(QueryDigest(**eng, (*cube)->schema()), reference)
          << "batch_rows=" << batch << " dims_in_nt=" << dims_in_nt;
    }
  }
}

TEST(BatchScanQueryTest, IdenticalResultsAcrossBatchRowsFileBacked) {
  Dataset ds = MakeZipfDataset(3000, 505);
  const std::string rel_path = TempPath("qfact.bin");
  Result<storage::Relation> rel = MakeFileRelation(ds, rel_path);
  ASSERT_TRUE(rel.ok());
  CureOptions options;
  FactInput input{.relation = &rel.value()};
  Result<std::unique_ptr<CureCube>> cube = BuildCure(ds.schema, input, options);
  ASSERT_TRUE(cube.ok()) << cube.status().ToString();
  // Spill the store so the block scanners really read files.
  const std::string pack_path = TempPath("qpack.bin");
  ASSERT_TRUE((*cube)->SpillStoreToDisk(pack_path).ok());
  Result<std::unique_ptr<CureQueryEngine>> eng =
      CureQueryEngine::Create(cube->get(), 0.5);
  ASSERT_TRUE(eng.ok());
  (*eng)->set_batch_rows(1);
  const auto reference = QueryDigest(**eng, (*cube)->schema());
  ASSERT_GT(reference.first, 0u);
  for (size_t batch : kBatchMatrix) {
    if (batch == 1) continue;
    (*eng)->set_batch_rows(batch);
    EXPECT_EQ(QueryDigest(**eng, (*cube)->schema()), reference)
        << "batch_rows=" << batch;
  }
  cube->reset();  // Close the packed store before unlinking.
  ASSERT_TRUE(storage::RemoveFile(pack_path).ok());
  ASSERT_TRUE(storage::RemoveFile(rel_path).ok());
}

TEST(BatchScanBaselineTest, BucIdenticalAcrossBatchRows) {
  Dataset ds = MakeZipfDataset(1200, 606);
  const schema::CubeSchema flat = ds.schema.Flattened();
  const schema::NodeIdCodec codec(flat);

  auto digest = [&](size_t batch) -> std::pair<uint64_t, uint64_t> {
    engine::BucOptions options;
    options.batch_rows = batch;
    Result<std::unique_ptr<engine::BucCube>> cube =
        engine::BuildBuc(ds.schema, ds.table, options);
    EXPECT_TRUE(cube.ok()) << cube.status().ToString();
    query::BucQueryEngine eng(cube->get());
    eng.set_batch_rows(batch);
    uint64_t count = 0, checksum = 0;
    ResultSink sink;
    for (NodeId id = 0; id < codec.num_nodes(); ++id) {
      sink.Reset();
      EXPECT_TRUE(eng.QueryNode(id, &sink).ok());
      count += sink.count();
      checksum ^= sink.checksum();
    }
    return {count, checksum};
  };
  const auto reference = digest(1);
  ASSERT_GT(reference.first, 0u);
  for (size_t batch : kBatchMatrix) {
    if (batch == 1) continue;
    EXPECT_EQ(digest(batch), reference) << "batch_rows=" << batch;
  }
}

TEST(BatchScanBaselineTest, BubstIdenticalAcrossBatchRows) {
  Dataset ds = MakeZipfDataset(1200, 707);
  const schema::CubeSchema flat = ds.schema.Flattened();
  const schema::NodeIdCodec codec(flat);

  auto digest = [&](size_t batch,
                    std::string* monolithic) -> std::pair<uint64_t, uint64_t> {
    engine::BubstOptions options;
    options.batch_rows = batch;
    Result<std::unique_ptr<engine::BubstCube>> cube =
        engine::BuildBubst(ds.schema, ds.table, options);
    EXPECT_TRUE(cube.ok()) << cube.status().ToString();
    // The monolithic relation must be byte-identical across batch sizes.
    const std::string path =
        TempPath("bubst_b" + std::to_string(batch) + ".bin");
    EXPECT_TRUE((*cube)->SpillToDisk(path).ok());
    *monolithic = ReadFileBytes(path);
    query::BubstQueryEngine eng(cube->get());
    eng.set_batch_rows(batch);
    uint64_t count = 0, checksum = 0;
    ResultSink sink;
    for (NodeId id = 0; id < codec.num_nodes(); ++id) {
      sink.Reset();
      EXPECT_TRUE(eng.QueryNode(id, &sink).ok());
      count += sink.count();
      checksum ^= sink.checksum();
    }
    cube->reset();  // Close before unlinking.
    EXPECT_TRUE(storage::RemoveFile(path).ok());
    return {count, checksum};
  };
  std::string reference_bytes;
  const auto reference = digest(1, &reference_bytes);
  ASSERT_GT(reference.first, 0u);
  for (size_t batch : kBatchMatrix) {
    if (batch == 1) continue;
    std::string bytes;
    EXPECT_EQ(digest(batch, &bytes), reference) << "batch_rows=" << batch;
    EXPECT_TRUE(bytes == reference_bytes)
        << "monolithic relation differs at batch_rows=" << batch;
  }
}

}  // namespace
}  // namespace cure
