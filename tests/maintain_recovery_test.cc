// Crash-safety tests for the delta WAL: round-trip replay, shape checks,
// torn-header recreation, and the byte-granular truncation sweep — the WAL
// is truncated at *every* byte offset inside the final frame and replay
// must recover exactly the committed prefix (kill -9 at any byte).
#include "maintain/delta_wal.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "storage/file_io.h"

namespace cure {
namespace {

using maintain::DeltaWal;
using maintain::RowBatch;
using maintain::WalRecoveryStats;

constexpr int kDims = 3;
constexpr int kMeasures = 1;
constexpr size_t kRecord = 4 * kDims + 8 * kMeasures;

std::string TestPath(const std::string& name) {
  return "/tmp/cure_wal_" + name + ".bin";
}

void RemoveIfPresent(const std::string& path) { std::remove(path.c_str()); }

/// A deterministic batch of `rows` records seeded by `seed`.
RowBatch MakeBatch(uint64_t rows, uint32_t seed) {
  RowBatch batch(kDims, kMeasures);
  for (uint64_t r = 0; r < rows; ++r) {
    const uint32_t dims[kDims] = {seed + static_cast<uint32_t>(r),
                                  seed * 7 + static_cast<uint32_t>(r) % 5,
                                  static_cast<uint32_t>(r) % 3};
    const int64_t measure = static_cast<int64_t>(seed) * 1000 + r;
    batch.Add(dims, &measure);
  }
  return batch;
}

/// Collects replayed records as packed byte strings.
struct Collector {
  std::vector<std::string> records;
  DeltaWal::RowCallback Callback() {
    return [this](const uint8_t* record) {
      records.emplace_back(reinterpret_cast<const char*>(record), kRecord);
    };
  }
};

std::vector<std::string> BatchRecords(const RowBatch& batch) {
  std::vector<std::string> records;
  for (uint64_t r = 0; r < batch.rows(); ++r) {
    records.emplace_back(
        reinterpret_cast<const char*>(batch.data() + r * kRecord), kRecord);
  }
  return records;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

TEST(DeltaWalTest, RoundTripReplaysCommittedRowsInOrder) {
  const std::string path = TestPath("roundtrip");
  RemoveIfPresent(path);

  std::vector<std::string> expected;
  {
    auto wal = DeltaWal::Open(path, kDims, kMeasures, nullptr);
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    EXPECT_EQ((*wal)->recovery().rows, 0u);
    for (uint32_t b = 0; b < 3; ++b) {
      const RowBatch batch = MakeBatch(4 + b, 100 + b);
      const std::vector<std::string> records = BatchRecords(batch);
      expected.insert(expected.end(), records.begin(), records.end());
      ASSERT_TRUE((*wal)->AppendBatch(batch).ok());
    }
    EXPECT_EQ((*wal)->total_batches(), 3u);
    EXPECT_EQ((*wal)->total_rows(), 4u + 5u + 6u);
  }

  Collector collector;
  WalRecoveryStats stats;
  auto wal = DeltaWal::Open(path, kDims, kMeasures, collector.Callback(), &stats);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  EXPECT_EQ(stats.batches, 3u);
  EXPECT_EQ(stats.rows, expected.size());
  EXPECT_EQ(stats.truncated_bytes, 0u);
  EXPECT_EQ(collector.records, expected);
  // The reopened WAL appends after the recovered frames.
  ASSERT_TRUE((*wal)->AppendBatch(MakeBatch(2, 999)).ok());
  EXPECT_EQ((*wal)->total_rows(), expected.size() + 2);
  ASSERT_TRUE(storage::RemoveFile(path).ok());
}

TEST(DeltaWalTest, EmptyBatchIsANoop) {
  const std::string path = TestPath("empty");
  RemoveIfPresent(path);
  auto wal = DeltaWal::Open(path, kDims, kMeasures, nullptr);
  ASSERT_TRUE(wal.ok());
  const uint64_t bytes = (*wal)->file_bytes();
  ASSERT_TRUE((*wal)->AppendBatch(RowBatch(kDims, kMeasures)).ok());
  EXPECT_EQ((*wal)->file_bytes(), bytes);
  EXPECT_EQ((*wal)->total_batches(), 0u);
  ASSERT_TRUE(storage::RemoveFile(path).ok());
}

TEST(DeltaWalTest, RejectsShapeMismatch) {
  const std::string path = TestPath("shape");
  RemoveIfPresent(path);
  {
    auto wal = DeltaWal::Open(path, kDims, kMeasures, nullptr);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->AppendBatch(MakeBatch(3, 1)).ok());
  }
  EXPECT_FALSE(DeltaWal::Open(path, kDims + 1, kMeasures, nullptr).ok());
  EXPECT_FALSE(DeltaWal::Open(path, kDims, kMeasures + 1, nullptr).ok());
  // A batch of the wrong shape is rejected before touching the file.
  auto wal = DeltaWal::Open(path, kDims, kMeasures, nullptr);
  ASSERT_TRUE(wal.ok());
  EXPECT_FALSE((*wal)->AppendBatch(RowBatch(kDims + 1, kMeasures)).ok());
  ASSERT_TRUE(storage::RemoveFile(path).ok());
}

TEST(DeltaWalTest, TornHeaderIsRecreated) {
  const std::string path = TestPath("torn_header");
  RemoveIfPresent(path);
  // A crash before the 16-byte file header committed: any shorter file.
  WriteFile(path, std::string("CURE"));
  Collector collector;
  WalRecoveryStats stats;
  auto wal = DeltaWal::Open(path, kDims, kMeasures, collector.Callback(), &stats);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  EXPECT_EQ(stats.rows, 0u);
  EXPECT_EQ(stats.truncated_bytes, 4u);
  EXPECT_TRUE(collector.records.empty());
  ASSERT_TRUE((*wal)->AppendBatch(MakeBatch(2, 7)).ok());
  ASSERT_TRUE(storage::RemoveFile(path).ok());
}

TEST(DeltaWalTest, CorruptChecksumDropsOnlyTheCorruptTail) {
  const std::string path = TestPath("corrupt");
  RemoveIfPresent(path);
  uint64_t prefix_bytes = 0;
  std::vector<std::string> committed;
  {
    auto wal = DeltaWal::Open(path, kDims, kMeasures, nullptr);
    ASSERT_TRUE(wal.ok());
    const RowBatch first = MakeBatch(5, 11);
    committed = BatchRecords(first);
    ASSERT_TRUE((*wal)->AppendBatch(first).ok());
    prefix_bytes = (*wal)->file_bytes();
    ASSERT_TRUE((*wal)->AppendBatch(MakeBatch(5, 12)).ok());
  }
  // Flip one payload byte in the final frame: its checksum no longer
  // matches, so replay must stop at the first batch.
  std::string bytes = ReadFile(path);
  bytes[bytes.size() - 1] = static_cast<char>(bytes[bytes.size() - 1] ^ 0x5A);
  WriteFile(path, bytes);

  Collector collector;
  WalRecoveryStats stats;
  auto wal = DeltaWal::Open(path, kDims, kMeasures, collector.Callback(), &stats);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(collector.records, committed);
  EXPECT_EQ(stats.truncated_bytes, bytes.size() - prefix_bytes);
  EXPECT_EQ((*wal)->file_bytes(), prefix_bytes);
  ASSERT_TRUE(storage::RemoveFile(path).ok());
}

// The satellite acceptance test: truncate the WAL at every byte offset of
// the final frame (simulating kill -9 mid-append at each possible point)
// and assert replay recovers exactly the committed prefix — never a partial
// batch, never a lost committed batch.
TEST(DeltaWalTest, TruncationAtEveryFinalFrameOffsetRecoversCommittedPrefix) {
  const std::string path = TestPath("sweep_master");
  const std::string copy = TestPath("sweep_copy");
  RemoveIfPresent(path);

  std::vector<std::string> committed;  // records of batches 1..2
  uint64_t prefix_bytes = 0;
  {
    auto wal = DeltaWal::Open(path, kDims, kMeasures, nullptr);
    ASSERT_TRUE(wal.ok());
    for (uint32_t b = 0; b < 2; ++b) {
      const RowBatch batch = MakeBatch(3 + b, 40 + b);
      const std::vector<std::string> records = BatchRecords(batch);
      committed.insert(committed.end(), records.begin(), records.end());
      ASSERT_TRUE((*wal)->AppendBatch(batch).ok());
    }
    prefix_bytes = (*wal)->file_bytes();
    ASSERT_TRUE((*wal)->AppendBatch(MakeBatch(4, 50)).ok());
  }
  const std::string full = ReadFile(path);
  ASSERT_GT(full.size(), prefix_bytes);

  for (size_t len = prefix_bytes; len < full.size(); ++len) {
    WriteFile(copy, full.substr(0, len));
    Collector collector;
    WalRecoveryStats stats;
    auto wal =
        DeltaWal::Open(copy, kDims, kMeasures, collector.Callback(), &stats);
    ASSERT_TRUE(wal.ok()) << "len=" << len << ": " << wal.status().ToString();
    EXPECT_EQ(collector.records, committed) << "len=" << len;
    EXPECT_EQ(stats.batches, 2u) << "len=" << len;
    EXPECT_EQ(stats.truncated_bytes, len - prefix_bytes) << "len=" << len;
    // Post-recovery the file is exactly the committed prefix and the WAL
    // accepts new appends.
    EXPECT_EQ((*wal)->file_bytes(), prefix_bytes) << "len=" << len;
    ASSERT_TRUE((*wal)->AppendBatch(MakeBatch(1, 60)).ok()) << "len=" << len;
  }
  ASSERT_TRUE(storage::RemoveFile(path).ok());
  ASSERT_TRUE(storage::RemoveFile(copy).ok());
}

TEST(DeltaWalTest, ChecksumIsFnv1a) {
  const uint8_t data[] = {'a', 'b', 'c'};
  // Independently computed FNV-1a 64-bit of "abc".
  EXPECT_EQ(DeltaWal::Checksum(data, 3), 0xe71fa2190541574bull);
  EXPECT_EQ(DeltaWal::Checksum(data, 0), 0xcbf29ce484222325ull);
}

}  // namespace
}  // namespace cure
