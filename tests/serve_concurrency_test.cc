// Concurrency correctness of the serving layer: N client threads firing a
// random node workload at a shared CubeServer must observe exactly the
// (count, checksum) pairs the serial CureQueryEngine produces — with the
// result cache on and off. Built with -fsanitize=thread in the CI tsan job,
// this also proves the shared read path (engine, buffer cache, cube store)
// is race-free.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "engine/cure.h"
#include "gen/datasets.h"
#include "gen/random.h"
#include "query/node_query.h"
#include "query/workload.h"
#include "serve/cube_server.h"
#include "serve/tcp_server.h"
#include "storage/file_io.h"

namespace cure {
namespace {

using engine::BuildCure;
using engine::CureOptions;
using engine::FactInput;
using query::CureQueryEngine;
using query::ResultSink;
using schema::NodeId;
using serve::CubeServer;
using serve::CubeServerOptions;
using serve::QueryRequest;
using serve::QueryResponse;

gen::Dataset MakeHier(uint64_t tuples, uint64_t seed) {
  gen::Dataset ds;
  std::vector<schema::Dimension> dims;
  dims.push_back(schema::Dimension::Linear("A", {24, 6, 2}));
  dims.push_back(schema::Dimension::Linear("B", {9, 3}));
  dims.push_back(schema::Dimension::Flat("C", 5));
  auto schema = schema::CubeSchema::Create(
      std::move(dims), 1,
      {{schema::AggFn::kSum, 0, "s"}, {schema::AggFn::kCount, 0, "c"}});
  EXPECT_TRUE(schema.ok());
  ds.schema = std::move(schema).value();
  ds.table = schema::FactTable(3, 1);
  gen::Rng rng(seed);
  for (uint64_t t = 0; t < tuples; ++t) {
    const uint32_t row[3] = {static_cast<uint32_t>(rng.NextRange(24)),
                             static_cast<uint32_t>(rng.NextRange(9)),
                             static_cast<uint32_t>(rng.NextRange(5))};
    const int64_t m = static_cast<int64_t>(rng.NextRange(100));
    ds.table.AppendRow(row, &m);
  }
  return ds;
}

struct Expected {
  uint64_t count = 0;
  uint64_t checksum = 0;
};

/// Builds, persists and reopens a cube (the serving deployment shape), then
/// checks concurrent == serial for every workload query.
class ServeConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ds_ = MakeHier(1500, 31);
    CureOptions options;
    FactInput input{.table = &ds_.table};
    auto built = BuildCure(ds_.schema, input, options);
    ASSERT_TRUE(built.ok()) << built.status().ToString();

    dir_ = ::testing::TempDir() + "serve_concurrency";
    ASSERT_TRUE(storage::EnsureDir(dir_).ok());
    packed_path_ = dir_ + "/cube.bin";
    ASSERT_TRUE(
        (*built)->mutable_store().PersistPacked(packed_path_).ok());

    fact_ = storage::Relation::Memory(ds_.table.RecordSize());
    ASSERT_TRUE(ds_.table.WriteTo(&fact_).ok());
    auto cube = engine::CureCube::OpenPersisted(ds_.schema, packed_path_,
                                                &fact_);
    ASSERT_TRUE(cube.ok()) << cube.status().ToString();
    cube_ = std::move(cube).value();

    // Workload: every distinct node once (unique draw), so the serial
    // baseline below covers each query exactly once.
    const schema::NodeIdCodec& codec = cube_->store().codec();
    workload_ = query::RandomNodeWorkload(codec, 72, /*seed=*/7,
                                          /*unique=*/true);
    auto serial = CureQueryEngine::Create(cube_.get(), 1.0);
    ASSERT_TRUE(serial.ok());
    expected_.resize(workload_.size());
    for (size_t i = 0; i < workload_.size(); ++i) {
      ResultSink sink;
      ASSERT_TRUE((*serial)->QueryNode(workload_[i], &sink).ok());
      expected_[i] = {sink.count(), sink.checksum()};
    }
  }

  /// Fires the whole workload from `num_clients` threads (each thread takes
  /// a strided share) and checks every response against the serial baseline.
  void RunClients(CubeServer* server, int num_clients, int rounds) {
    std::atomic<int> mismatches{0};
    std::vector<std::thread> clients;
    for (int c = 0; c < num_clients; ++c) {
      clients.emplace_back([&, c] {
        for (int r = 0; r < rounds; ++r) {
          for (size_t i = c; i < workload_.size();
               i += static_cast<size_t>(num_clients)) {
            QueryRequest request;
            request.node = workload_[i];
            QueryResponse response = server->Submit(request).get();
            if (!response.status.ok() ||
                response.count != expected_[i].count ||
                response.checksum != expected_[i].checksum) {
              mismatches.fetch_add(1, std::memory_order_relaxed);
            }
          }
        }
      });
    }
    for (std::thread& t : clients) t.join();
    EXPECT_EQ(mismatches.load(), 0);
  }

  gen::Dataset ds_;
  storage::Relation fact_;
  std::string dir_, packed_path_;
  std::unique_ptr<engine::CureCube> cube_;
  std::vector<NodeId> workload_;
  std::vector<Expected> expected_;
};

TEST_F(ServeConcurrencyTest, ConcurrentEqualsSerialCacheOff) {
  for (const int clients : {1, 4, 8}) {
    CubeServerOptions options;
    options.num_threads = 4;
    options.max_inflight = 1024;
    options.cache_bytes = 0;
    auto server = CubeServer::Create(cube_.get(), options);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    RunClients(server->get(), clients, /*rounds=*/2);
  }
}

TEST_F(ServeConcurrencyTest, ConcurrentEqualsSerialCacheOn) {
  for (const int clients : {1, 4, 8}) {
    CubeServerOptions options;
    options.num_threads = 4;
    options.max_inflight = 1024;
    options.cache_bytes = 8 << 20;
    auto server = CubeServer::Create(cube_.get(), options);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    // Two rounds: the second is served mostly from the cache and must be
    // byte-identical to the serial baseline too.
    RunClients(server->get(), clients, /*rounds=*/2);
    EXPECT_GT(server->get()->cache()->stats().hits, 0u);
  }
}

TEST_F(ServeConcurrencyTest, ConcurrentSlicedAndIcebergQueries) {
  CubeServerOptions options;
  options.num_threads = 4;
  options.cache_bytes = 4 << 20;
  auto server = CubeServer::Create(cube_.get(), options);
  ASSERT_TRUE(server.ok());
  const schema::NodeIdCodec& codec = cube_->store().codec();

  // Serial baselines for a mixed sliced/iceberg request set.
  struct Mixed {
    QueryRequest request;
    Expected expected;
  };
  auto serial = CureQueryEngine::Create(cube_.get(), 1.0);
  ASSERT_TRUE(serial.ok());
  std::vector<Mixed> mixed;
  for (uint32_t top = 0; top < 2; ++top) {
    for (int64_t minsup : {0, 2, 4}) {
      Mixed m;
      m.request.node = codec.Encode({0, 0, 1});
      m.request.slices = {{0, 2, top}};
      m.request.min_count = minsup;
      ResultSink sink;
      ASSERT_TRUE((*serial)
                      ->QueryNodeSlicedIceberg(m.request.node, m.request.slices,
                                               minsup > 1 ? 1 : -1, minsup,
                                               &sink)
                      .ok());
      m.expected = {sink.count(), sink.checksum()};
      mixed.push_back(m);
    }
  }

  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 6; ++c) {
    clients.emplace_back([&] {
      for (int r = 0; r < 10; ++r) {
        for (const Mixed& m : mixed) {
          QueryResponse response = server->get()->Submit(m.request).get();
          if (!response.status.ok() || response.count != m.expected.count ||
              response.checksum != m.expected.checksum) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST_F(ServeConcurrencyTest, ConcurrentTcpClients) {
  CubeServerOptions options;
  options.num_threads = 4;
  options.cache_bytes = 2 << 20;
  auto server = CubeServer::Create(cube_.get(), options);
  ASSERT_TRUE(server.ok());
  auto tcp = serve::TcpLineServer::Start(server->get(), {});
  ASSERT_TRUE(tcp.ok()) << tcp.status().ToString();

  // Several threads hammer HandleLine (the full command path minus the
  // socket I/O, which the serve_test covers) with overlapping queries.
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&] {
      for (int r = 0; r < 25; ++r) {
        if ((*tcp)->HandleLine("QUERY A_L1,B_L1").rfind("OK ", 0) != 0) {
          failures.fetch_add(1);
        }
        if ((*tcp)->HandleLine("ICEBERG A_L0 3").rfind("OK ", 0) != 0) {
          failures.fetch_add(1);
        }
        if ((*tcp)->HandleLine("STATS").rfind("OK", 0) != 0) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  (*tcp)->Stop();
}

}  // namespace
}  // namespace cure
