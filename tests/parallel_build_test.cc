#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "engine/cure.h"
#include "gen/datasets.h"
#include "gen/random.h"
#include "gen/zipf.h"
#include "query/node_query.h"
#include "query/reference.h"
#include "storage/file_io.h"

namespace cure {
namespace {

using engine::BuildCure;
using engine::CureCube;
using engine::CureOptions;
using engine::FactInput;
using gen::Dataset;

// Hierarchical Zipf dataset sized so the external path picks the leaf level
// of dimension A and produces a few dozen partitions.
Dataset MakeZipfDataset(uint64_t tuples, uint64_t seed) {
  Dataset ds;
  std::vector<schema::Dimension> dims;
  dims.push_back(schema::Dimension::Linear("A", {48, 4, 2}));
  dims.push_back(schema::Dimension::Linear("B", {10, 3}));
  dims.push_back(schema::Dimension::Flat("C", 5));
  Result<schema::CubeSchema> schema = schema::CubeSchema::Create(
      std::move(dims), 1,
      {{schema::AggFn::kSum, 0, "sum"}, {schema::AggFn::kCount, 0, "cnt"}});
  EXPECT_TRUE(schema.ok());
  ds.schema = std::move(schema).value();
  ds.table = schema::FactTable(3, 1);
  gen::Rng rng(seed);
  gen::ZipfSampler zipf_a(48, 0.5);
  gen::ZipfSampler zipf_b(10, 0.3);
  for (uint64_t t = 0; t < tuples; ++t) {
    const uint32_t dims_row[3] = {zipf_a.Sample(&rng), zipf_b.Sample(&rng),
                                  static_cast<uint32_t>(rng.NextRange(5))};
    const int64_t m = static_cast<int64_t>(rng.NextRange(40));
    ds.table.AppendRow(dims_row, &m);
  }
  ds.name = "parallel_zipf";
  return ds;
}

CureOptions ExternalOptions() {
  CureOptions options;
  options.force_external = true;
  options.memory_budget_bytes = 24576;
  options.signature_pool_capacity = 256;
  return options;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

// Builds with `options`, persists the packed store, and returns its bytes.
std::string BuildAndPack(const Dataset& ds, const storage::Relation& rel,
                         CureOptions options, int num_threads) {
  options.num_threads = num_threads;
  FactInput input{.relation = &rel};
  Result<std::unique_ptr<CureCube>> cube = BuildCure(ds.schema, input, options);
  EXPECT_TRUE(cube.ok()) << cube.status().ToString();
  if (!cube.ok()) return "";
  EXPECT_TRUE((*cube)->stats().external);
  EXPECT_GT((*cube)->stats().num_partitions, 4u);
  const std::string path = "/tmp/cure_parallel_pack_" +
                           std::to_string(::getpid()) + "_t" +
                           std::to_string(num_threads) + ".bin";
  Status s = (*cube)->store().PersistPacked(path);
  EXPECT_TRUE(s.ok()) << s.ToString();
  std::string bytes = ReadFileBytes(path);
  EXPECT_TRUE(storage::RemoveFile(path).ok());
  return bytes;
}

TEST(ParallelBuildTest, ByteIdenticalPackedStoresAcrossThreadCounts) {
  Dataset ds = MakeZipfDataset(4000, 4242);
  storage::Relation rel = storage::Relation::Memory(ds.table.RecordSize());
  ASSERT_TRUE(ds.table.WriteTo(&rel).ok());

  const std::string serial = BuildAndPack(ds, rel, ExternalOptions(), 1);
  ASSERT_FALSE(serial.empty());
  for (int threads : {2, 8}) {
    const std::string parallel = BuildAndPack(ds, rel, ExternalOptions(), threads);
    ASSERT_EQ(parallel.size(), serial.size()) << "threads=" << threads;
    EXPECT_TRUE(parallel == serial)
        << "packed store differs from the serial reference at threads="
        << threads;
  }
}

TEST(ParallelBuildTest, ByteIdenticalWithDimensionsInNt) {
  Dataset ds = MakeZipfDataset(3000, 777);
  storage::Relation rel = storage::Relation::Memory(ds.table.RecordSize());
  ASSERT_TRUE(ds.table.WriteTo(&rel).ok());
  CureOptions options = ExternalOptions();
  options.dims_in_nt = true;  // CURE_DR variant.

  const std::string serial = BuildAndPack(ds, rel, options, 1);
  ASSERT_FALSE(serial.empty());
  const std::string parallel = BuildAndPack(ds, rel, options, 8);
  EXPECT_TRUE(parallel == serial);
}

TEST(ParallelBuildTest, ByteIdenticalUnderForcedCatFormats) {
  Dataset ds = MakeZipfDataset(2500, 31);
  storage::Relation rel = storage::Relation::Memory(ds.table.RecordSize());
  ASSERT_TRUE(ds.table.WriteTo(&rel).ok());
  for (cube::CatFormat format :
       {cube::CatFormat::kFormatA, cube::CatFormat::kFormatB,
        cube::CatFormat::kAsNT}) {
    CureOptions options = ExternalOptions();
    options.forced_cat_format = format;
    const std::string serial = BuildAndPack(ds, rel, options, 1);
    ASSERT_FALSE(serial.empty());
    const std::string parallel = BuildAndPack(ds, rel, options, 4);
    EXPECT_TRUE(parallel == serial)
        << "format=" << static_cast<int>(format);
  }
}

TEST(ParallelBuildTest, ParallelExternalCubeMatchesReference) {
  Dataset ds = MakeZipfDataset(2000, 909);
  storage::Relation rel = storage::Relation::Memory(ds.table.RecordSize());
  ASSERT_TRUE(ds.table.WriteTo(&rel).ok());
  CureOptions options = ExternalOptions();
  options.num_threads = 8;
  FactInput input{.relation = &rel};
  Result<std::unique_ptr<CureCube>> cube = BuildCure(ds.schema, input, options);
  ASSERT_TRUE(cube.ok()) << cube.status().ToString();
  EXPECT_EQ((*cube)->stats().num_threads, 8);
  EXPECT_GE((*cube)->stats().max_in_flight_partitions, 1u);
  EXPECT_GT((*cube)->stats().construct_stage.wall_seconds, 0.0);

  Result<std::unique_ptr<query::CureQueryEngine>> engine =
      query::CureQueryEngine::Create(cube->get(), 1.0);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  const schema::NodeIdCodec& codec = (*cube)->store().codec();
  for (schema::NodeId id = 0; id < codec.num_nodes(); ++id) {
    query::ResultSink sink(/*retain=*/true);
    ASSERT_TRUE((*engine)->QueryNode(id, &sink).ok());
    Result<std::vector<query::ResultSink::Row>> expected =
        query::ReferenceNodeResult((*cube)->schema(), ds.table, id, 1);
    ASSERT_TRUE(expected.ok());
    EXPECT_TRUE(query::SameResults(sink.TakeRows(),
                                   std::move(expected).value()))
        << "node " << codec.Name(id, (*cube)->schema());
  }
}

TEST(ParallelBuildTest, ScratchDirectoryCleanedUpOnSuccess) {
  Dataset ds = MakeZipfDataset(2000, 11);
  storage::Relation rel = storage::Relation::Memory(ds.table.RecordSize());
  ASSERT_TRUE(ds.table.WriteTo(&rel).ok());

  const std::string temp_dir =
      "/tmp/cure_scratch_test_" + std::to_string(::getpid());
  std::filesystem::create_directories(temp_dir);
  CureOptions options = ExternalOptions();
  options.temp_dir = temp_dir;
  options.num_threads = 4;
  FactInput input{.relation = &rel};
  Result<std::unique_ptr<CureCube>> cube = BuildCure(ds.schema, input, options);
  ASSERT_TRUE(cube.ok()) << cube.status().ToString();
  // The per-build scratch subdirectory (and every partition / sort-run file
  // in it) must be gone.
  EXPECT_TRUE(std::filesystem::is_empty(temp_dir));
  std::filesystem::remove_all(temp_dir);
}

TEST(ParallelBuildTest, ScratchDirectoryCleanedUpOnError) {
  Dataset ds = MakeZipfDataset(500, 12);
  storage::Relation rel = storage::Relation::Memory(ds.table.RecordSize());
  ASSERT_TRUE(ds.table.WriteTo(&rel).ok());

  const std::string temp_dir =
      "/tmp/cure_scratch_err_test_" + std::to_string(::getpid());
  std::filesystem::create_directories(temp_dir);
  CureOptions options = ExternalOptions();
  options.temp_dir = temp_dir;
  // kShort plans are rejected by the external path after the scratch dir has
  // been created — the error path must still remove it.
  options.plan_style = plan::ExecutionPlan::Style::kShort;
  FactInput input{.relation = &rel};
  Result<std::unique_ptr<CureCube>> cube = BuildCure(ds.schema, input, options);
  EXPECT_FALSE(cube.ok());
  EXPECT_TRUE(std::filesystem::is_empty(temp_dir));
  std::filesystem::remove_all(temp_dir);
}

TEST(ParallelBuildTest, SerialPathIgnoresThreadPool) {
  // num_threads = 1 must not spin up workers: in-flight cap stays 1 and the
  // cube matches the parallel output byte-for-byte (covered above); here we
  // check the stats contract.
  Dataset ds = MakeZipfDataset(1500, 55);
  storage::Relation rel = storage::Relation::Memory(ds.table.RecordSize());
  ASSERT_TRUE(ds.table.WriteTo(&rel).ok());
  CureOptions options = ExternalOptions();
  options.num_threads = 1;
  FactInput input{.relation = &rel};
  Result<std::unique_ptr<CureCube>> cube = BuildCure(ds.schema, input, options);
  ASSERT_TRUE(cube.ok()) << cube.status().ToString();
  EXPECT_EQ((*cube)->stats().num_threads, 1);
  EXPECT_EQ((*cube)->stats().max_in_flight_partitions, 1u);
}

}  // namespace
}  // namespace cure
