#include <gtest/gtest.h>

#include "engine/cure.h"
#include "gen/datasets.h"
#include "gen/random.h"
#include "query/node_query.h"
#include "query/reference.h"

namespace cure {
namespace {

using engine::BuildCure;
using engine::CureOptions;
using engine::FactInput;
using query::CureQueryEngine;
using query::ResultSink;
using schema::NodeId;

gen::Dataset MakeHier(uint64_t tuples, uint64_t seed) {
  gen::Dataset ds;
  std::vector<schema::Dimension> dims;
  dims.push_back(schema::Dimension::Linear("A", {24, 6, 2}));
  dims.push_back(schema::Dimension::Linear("B", {9, 3}));
  dims.push_back(schema::Dimension::Flat("C", 5));
  auto schema = schema::CubeSchema::Create(
      std::move(dims), 1,
      {{schema::AggFn::kSum, 0, "s"}, {schema::AggFn::kCount, 0, "c"}});
  EXPECT_TRUE(schema.ok());
  ds.schema = std::move(schema).value();
  ds.table = schema::FactTable(3, 1);
  gen::Rng rng(seed);
  for (uint64_t t = 0; t < tuples; ++t) {
    const uint32_t row[3] = {static_cast<uint32_t>(rng.NextRange(24)),
                             static_cast<uint32_t>(rng.NextRange(9)),
                             static_cast<uint32_t>(rng.NextRange(5))};
    const int64_t m = static_cast<int64_t>(rng.NextRange(100));
    ds.table.AppendRow(row, &m);
  }
  return ds;
}

// Filters a full reference result by a slice list (expected semantics).
std::vector<ResultSink::Row> FilterReference(
    const schema::CubeSchema& schema, const std::vector<int>& levels,
    std::vector<ResultSink::Row> rows,
    const std::vector<CureQueryEngine::Slice>& slices) {
  std::vector<ResultSink::Row> out;
  for (ResultSink::Row& row : rows) {
    bool keep = true;
    for (const auto& slice : slices) {
      int pos = 0;
      for (int d = 0; d < slice.dim; ++d) {
        if (levels[d] != schema.dim(d).num_levels()) ++pos;
      }
      auto map = schema.dim(slice.dim).LevelToLevelMap(levels[slice.dim],
                                                       slice.level);
      const uint32_t code = levels[slice.dim] == slice.level
                                ? row.dims[pos]
                                : (*map)[row.dims[pos]];
      if (code != slice.code) {
        keep = false;
        break;
      }
    }
    if (keep) out.push_back(std::move(row));
  }
  return out;
}

TEST(SliceTest, SliceAtNodeLevel) {
  gen::Dataset ds = MakeHier(600, 11);
  CureOptions options;
  FactInput input{.table = &ds.table};
  auto cube = BuildCure(ds.schema, input, options);
  ASSERT_TRUE(cube.ok());
  auto engine = CureQueryEngine::Create(cube->get(), 1.0);
  ASSERT_TRUE(engine.ok());
  const schema::NodeIdCodec& codec = (*cube)->store().codec();
  // Node (A@0, B@0, C@0) sliced to A leaf code 5.
  const NodeId node = codec.Encode({0, 0, 0});
  const std::vector<CureQueryEngine::Slice> slices = {{0, 0, 5}};
  ResultSink sink(true);
  ASSERT_TRUE((*engine)->QueryNodeSliced(node, slices, &sink).ok());
  auto all = query::ReferenceNodeResult(ds.schema, ds.table, node);
  ASSERT_TRUE(all.ok());
  auto expected = FilterReference(ds.schema, codec.Decode(node),
                                  std::move(all).value(), slices);
  EXPECT_TRUE(query::SameResults(sink.TakeRows(), std::move(expected)));
}

TEST(SliceTest, SliceAtCoarserLevelRollsUp) {
  gen::Dataset ds = MakeHier(800, 12);
  CureOptions options;
  FactInput input{.table = &ds.table};
  auto cube = BuildCure(ds.schema, input, options);
  ASSERT_TRUE(cube.ok());
  auto engine = CureQueryEngine::Create(cube->get(), 1.0);
  ASSERT_TRUE(engine.ok());
  const schema::NodeIdCodec& codec = (*cube)->store().codec();
  // Node (A@0, B@1) sliced on A at level 2 (the top, 2 values) — "all
  // leaf-level rows whose A rolls up to super-group 1".
  const NodeId node = codec.Encode({0, 1, 1});
  const std::vector<CureQueryEngine::Slice> slices = {{0, 2, 1}};
  ResultSink sink(true);
  ASSERT_TRUE((*engine)->QueryNodeSliced(node, slices, &sink).ok());
  EXPECT_GT(sink.count(), 0u);
  auto all = query::ReferenceNodeResult(ds.schema, ds.table, node);
  ASSERT_TRUE(all.ok());
  auto expected = FilterReference(ds.schema, codec.Decode(node),
                                  std::move(all).value(), slices);
  EXPECT_TRUE(query::SameResults(sink.TakeRows(), std::move(expected)));
}

TEST(SliceTest, MultipleSlices) {
  gen::Dataset ds = MakeHier(1000, 13);
  CureOptions options;
  FactInput input{.table = &ds.table};
  auto cube = BuildCure(ds.schema, input, options);
  ASSERT_TRUE(cube.ok());
  auto engine = CureQueryEngine::Create(cube->get(), 1.0);
  ASSERT_TRUE(engine.ok());
  const schema::NodeIdCodec& codec = (*cube)->store().codec();
  const NodeId node = codec.Encode({1, 0, 0});
  const std::vector<CureQueryEngine::Slice> slices = {{0, 2, 0}, {2, 0, 3}};
  ResultSink sink(true);
  ASSERT_TRUE((*engine)->QueryNodeSliced(node, slices, &sink).ok());
  auto all = query::ReferenceNodeResult(ds.schema, ds.table, node);
  ASSERT_TRUE(all.ok());
  auto expected = FilterReference(ds.schema, codec.Decode(node),
                                  std::move(all).value(), slices);
  EXPECT_TRUE(query::SameResults(sink.TakeRows(), std::move(expected)));
}

TEST(SliceTest, EmptySliceListEqualsPlainQuery) {
  gen::Dataset ds = MakeHier(300, 14);
  CureOptions options;
  FactInput input{.table = &ds.table};
  auto cube = BuildCure(ds.schema, input, options);
  ASSERT_TRUE(cube.ok());
  auto engine = CureQueryEngine::Create(cube->get(), 1.0);
  ASSERT_TRUE(engine.ok());
  ResultSink a, b;
  ASSERT_TRUE((*engine)->QueryNode(3, &a).ok());
  ASSERT_TRUE((*engine)->QueryNodeSliced(3, {}, &b).ok());
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.checksum(), b.checksum());
}

TEST(SliceTest, RejectsSliceOnUngroupedOrCoarserDim) {
  gen::Dataset ds = MakeHier(100, 15);
  CureOptions options;
  FactInput input{.table = &ds.table};
  auto cube = BuildCure(ds.schema, input, options);
  ASSERT_TRUE(cube.ok());
  auto engine = CureQueryEngine::Create(cube->get(), 1.0);
  ASSERT_TRUE(engine.ok());
  const schema::NodeIdCodec& codec = (*cube)->store().codec();
  ResultSink sink;
  // Dimension A at ALL: cannot slice on it.
  EXPECT_FALSE((*engine)
                   ->QueryNodeSliced(codec.Encode({3, 0, 0}), {{0, 0, 1}}, &sink)
                   .ok());
  // Node groups A at level 2 (coarse); slicing at level 0 (finer) invalid.
  EXPECT_FALSE((*engine)
                   ->QueryNodeSliced(codec.Encode({2, 0, 0}), {{0, 0, 1}}, &sink)
                   .ok());
  // Out-of-range dimension.
  EXPECT_FALSE(
      (*engine)->QueryNodeSliced(codec.Encode({0, 0, 0}), {{9, 0, 1}}, &sink).ok());
}

TEST(SliceTest, CombinedSliceAndIceberg) {
  gen::Dataset ds = MakeHier(1200, 17);
  CureOptions options;
  FactInput input{.table = &ds.table};
  auto cube = BuildCure(ds.schema, input, options);
  ASSERT_TRUE(cube.ok());
  auto engine = CureQueryEngine::Create(cube->get(), 1.0);
  ASSERT_TRUE(engine.ok());
  const schema::NodeIdCodec& codec = (*cube)->store().codec();
  // Node (A@1, B@0) sliced on A's top level, HAVING count >= 3. A slice
  // selects whole groups, so filtering commutes with the iceberg predicate.
  const NodeId node = codec.Encode({1, 0, 1});
  const std::vector<CureQueryEngine::Slice> slices = {{0, 2, 0}};
  const int64_t min_count = 3;
  ResultSink sink(true);
  ASSERT_TRUE((*engine)
                  ->QueryNodeSlicedIceberg(node, slices, /*count_aggregate=*/1,
                                           min_count, &sink)
                  .ok());
  EXPECT_GT(sink.count(), 0u);
  auto iceberg = query::ReferenceNodeResult(ds.schema, ds.table, node,
                                            /*min_support=*/min_count);
  ASSERT_TRUE(iceberg.ok());
  auto expected = FilterReference(ds.schema, codec.Decode(node),
                                  std::move(iceberg).value(), slices);
  EXPECT_TRUE(query::SameResults(sink.TakeRows(), std::move(expected)));
}

TEST(SliceTest, CombinedSliceAndIcebergDegenerateCases) {
  gen::Dataset ds = MakeHier(500, 18);
  CureOptions options;
  FactInput input{.table = &ds.table};
  auto cube = BuildCure(ds.schema, input, options);
  ASSERT_TRUE(cube.ok());
  auto engine = CureQueryEngine::Create(cube->get(), 1.0);
  ASSERT_TRUE(engine.ok());
  const schema::NodeIdCodec& codec = (*cube)->store().codec();
  const NodeId node = codec.Encode({0, 1, 0});
  const std::vector<CureQueryEngine::Slice> slices = {{1, 1, 1}};
  // min_count <= 1 degenerates to a plain sliced query.
  ResultSink sliced(false), degenerate(false);
  ASSERT_TRUE((*engine)->QueryNodeSliced(node, slices, &sliced).ok());
  ASSERT_TRUE(
      (*engine)->QueryNodeSlicedIceberg(node, slices, 1, 1, &degenerate).ok());
  EXPECT_EQ(sliced.count(), degenerate.count());
  EXPECT_EQ(sliced.checksum(), degenerate.checksum());
  // Empty slice list degenerates to a plain count-iceberg query.
  ResultSink iceberg(false), no_slices(false);
  ASSERT_TRUE((*engine)->QueryNodeCountIceberg(node, 1, 4, &iceberg).ok());
  ASSERT_TRUE(
      (*engine)->QueryNodeSlicedIceberg(node, {}, 1, 4, &no_slices).ok());
  EXPECT_EQ(iceberg.count(), no_slices.count());
  EXPECT_EQ(iceberg.checksum(), no_slices.checksum());
}

TEST(SliceTest, WorksOnExternalAndPostProcessedCubes) {
  gen::Dataset ds = MakeHier(900, 16);
  storage::Relation rel = storage::Relation::Memory(ds.table.RecordSize());
  ASSERT_TRUE(ds.table.WriteTo(&rel).ok());
  CureOptions options;
  options.force_external = true;
  options.memory_budget_bytes = 16384;
  FactInput input{.relation = &rel};
  auto cube = BuildCure(ds.schema, input, options);
  ASSERT_TRUE(cube.ok()) << cube.status().ToString();
  ASSERT_TRUE(engine::CurePostProcess(cube->get()).ok());
  auto engine = CureQueryEngine::Create(cube->get(), 1.0);
  ASSERT_TRUE(engine.ok());
  const schema::NodeIdCodec& codec = (*cube)->store().codec();
  const NodeId node = codec.Encode({0, 2, 1});  // A@leaf, B and C at ALL
  const std::vector<CureQueryEngine::Slice> slices = {{0, 1, 2}};
  ResultSink sink(true);
  ASSERT_TRUE((*engine)->QueryNodeSliced(node, slices, &sink).ok());
  auto all = query::ReferenceNodeResult(ds.schema, ds.table, node);
  ASSERT_TRUE(all.ok());
  auto expected = FilterReference(ds.schema, codec.Decode(node),
                                  std::move(all).value(), slices);
  EXPECT_TRUE(query::SameResults(sink.TakeRows(), std::move(expected)));
}

}  // namespace
}  // namespace cure
