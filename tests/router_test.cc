#include <gtest/gtest.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/cure.h"
#include "gen/datasets.h"
#include "gen/random.h"
#include "gen/zipf.h"
#include "query/node_query.h"
#include "router/backend_client.h"
#include "router/merge.h"
#include "router/router.h"
#include "router/shard_map.h"
#include "serve/cube_server.h"
#include "serve/line_transport.h"
#include "serve/tcp_server.h"

namespace cure {
namespace {

using engine::BuildCure;
using engine::CureOptions;
using engine::FactInput;
using query::CureQueryEngine;
using query::ResultSink;
using router::BackendAddress;
using router::BackendReply;
using router::CureRouter;
using router::ParseBackendAddress;
using router::ParseBackendReply;
using router::PartialMerger;
using router::RouterOptions;
using router::ShardMap;
using schema::NodeId;
using serve::CubeServer;
using serve::CubeServerOptions;
using serve::LineTransport;
using serve::LineTransportOptions;
using serve::TcpLineServer;
using serve::TcpServerOptions;

/// Zipf-skewed hierarchical dataset with all four distributive aggregates —
/// the shape the re-aggregation proof needs (SUM/COUNT/MIN/MAX over skewed
/// keys, so per-shard partials genuinely overlap on hot groups).
gen::Dataset MakeZipfHier(uint64_t tuples, uint64_t seed) {
  gen::Dataset ds;
  std::vector<schema::Dimension> dims;
  dims.push_back(schema::Dimension::Linear("A", {24, 6, 2}));
  dims.push_back(schema::Dimension::Linear("B", {9, 3}));
  dims.push_back(schema::Dimension::Flat("C", 5));
  auto schema = schema::CubeSchema::Create(
      std::move(dims), 1,
      {{schema::AggFn::kSum, 0, "s"},
       {schema::AggFn::kCount, 0, "c"},
       {schema::AggFn::kMin, 0, "lo"},
       {schema::AggFn::kMax, 0, "hi"}});
  EXPECT_TRUE(schema.ok());
  ds.schema = std::move(schema).value();
  ds.table = schema::FactTable(3, 1);
  gen::Rng rng(seed);
  gen::ZipfSampler za(24, 1.1), zb(9, 0.9), zc(5, 0.7);
  for (uint64_t t = 0; t < tuples; ++t) {
    const uint32_t row[3] = {za.Sample(&rng), zb.Sample(&rng), zc.Sample(&rng)};
    const int64_t m = static_cast<int64_t>(rng.NextRange(1000));
    ds.table.AppendRow(row, &m);
  }
  return ds;
}

/// Splits a fact table into `parts` contiguous disjoint row ranges — the
/// same partitioning `cure_tool shard` applies.
std::vector<schema::FactTable> SplitTable(const schema::FactTable& table,
                                          int parts) {
  std::vector<schema::FactTable> out;
  const uint64_t rows = table.num_rows();
  std::vector<uint32_t> dims(table.num_dims());
  std::vector<int64_t> measures(table.num_measures());
  for (int k = 0; k < parts; ++k) {
    schema::FactTable part(table.num_dims(), table.num_measures());
    const uint64_t begin = rows * k / parts;
    const uint64_t end = rows * (k + 1) / parts;
    for (uint64_t row = begin; row < end; ++row) {
      for (int d = 0; d < table.num_dims(); ++d) dims[d] = table.dim(d, row);
      for (int m = 0; m < table.num_measures(); ++m) {
        measures[m] = table.measure(m, row);
      }
      part.AppendRow(dims.data(), measures.data());
    }
    out.push_back(std::move(part));
  }
  return out;
}

std::unique_ptr<engine::CureCube> BuildCubeFor(
    const schema::CubeSchema& schema, const schema::FactTable& table) {
  FactInput input{.table = &table};
  auto built = BuildCure(schema, input, CureOptions{});
  EXPECT_TRUE(built.ok()) << built.status().ToString();
  return std::move(built).value();
}

// ---------------------------------------------------------------- shard map

TEST(ShardMapTest, ParsesAddresses) {
  auto full = ParseBackendAddress("10.0.0.2:7101");
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->host, "10.0.0.2");
  EXPECT_EQ(full->port, 7101);
  auto bare = ParseBackendAddress("7102");
  ASSERT_TRUE(bare.ok());
  EXPECT_EQ(bare->host, "127.0.0.1");
  EXPECT_EQ(bare->port, 7102);
  EXPECT_FALSE(ParseBackendAddress("host:").ok());
  EXPECT_FALSE(ParseBackendAddress(":99").ok());
  EXPECT_FALSE(ParseBackendAddress("host:notaport").ok());
  EXPECT_FALSE(ParseBackendAddress("host:70000").ok());
  EXPECT_FALSE(ParseBackendAddress("").ok());
}

TEST(ShardMapTest, SerializeParseRoundTrip) {
  ShardMap map;
  map.shards = {{{"127.0.0.1", 7101}, {"127.0.0.1", 7102}},
                {{"127.0.0.1", 7103}, {"127.0.0.1", 7104}}};
  ASSERT_TRUE(map.Validate().ok());
  auto parsed = ShardMap::Parse(map.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->num_shards(), 2);
  EXPECT_EQ(parsed->shards[0][1].port, 7102);
  EXPECT_EQ(parsed->shards[1][0].port, 7103);
}

TEST(ShardMapTest, ParseToleratesCommentsAndBlankLines) {
  auto parsed = ShardMap::Parse(
      "# cluster for the smoke test\ncure-cluster v1\n\n"
      "shard 127.0.0.1:7101\n  # second shard\nshard 7103 7104\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->num_shards(), 2);
  EXPECT_EQ(parsed->num_replicas(1), 2);
}

TEST(ShardMapTest, RejectsMalformedMaps) {
  EXPECT_FALSE(ShardMap::Parse("").ok());                        // no header
  EXPECT_FALSE(ShardMap::Parse("shard 7101\n").ok());            // no header
  EXPECT_FALSE(ShardMap::Parse("cure-cluster v1\n").ok());       // no shards
  EXPECT_FALSE(ShardMap::Parse("cure-cluster v1\nshard\n").ok());  // empty
  EXPECT_FALSE(
      ShardMap::Parse("cure-cluster v1\nshard 7101\nshard 7101\n").ok());
  EXPECT_FALSE(
      ShardMap::Parse("cure-cluster v1\nreplica 7101\n").ok());  // keyword
}

// ----------------------------------------------------------- reply parsing

TEST(BackendReplyTest, ParsesOkHeaderAndRows) {
  const BackendReply reply = ParseBackendReply(
      "OK 2 00000000deadbeef HIT trace=77\n1\t2\t30\t3\n4\t5\t60\t6\n");
  ASSERT_TRUE(reply.status.ok()) << reply.status.ToString();
  EXPECT_EQ(reply.count, 2u);
  EXPECT_EQ(reply.checksum, 0xdeadbeefull);
  EXPECT_TRUE(reply.cache_hit);
  EXPECT_EQ(reply.trace_id, 77u);
  ASSERT_EQ(reply.rows.size(), 2u);
  EXPECT_EQ(reply.rows[0], "1\t2\t30\t3");
}

TEST(BackendReplyTest, MapsErrorCodeNames) {
  EXPECT_EQ(ParseBackendReply("ERR IOError read failed").status.code(),
            StatusCode::kIoError);
  EXPECT_EQ(ParseBackendReply("ERR DataLoss checksum mismatch").status.code(),
            StatusCode::kDataLoss);
  EXPECT_EQ(ParseBackendReply("ERR NotFound no such node").status.code(),
            StatusCode::kNotFound);
  EXPECT_EQ(
      ParseBackendReply("ERR SomeFutureCode whatever").status.code(),
      StatusCode::kInternal);
  EXPECT_EQ(ParseBackendReply("garbage").status.code(), StatusCode::kIoError);
  EXPECT_EQ(ParseBackendReply("").status.code(), StatusCode::kIoError);
}

// --------------------------------------------------------------- the merge

/// Satellite: merging per-shard partials over disjoint fact partitions must
/// be bit-identical to the single-node cube — every lattice node, rows and
/// order-independent checksum, for SUM/COUNT/MIN/MAX over Zipf data.
TEST(PartialMergerTest, ShardMergeBitIdenticalToSingleNodeAcrossLattice) {
  gen::Dataset ds = MakeZipfHier(3000, 97);
  auto whole = BuildCubeFor(ds.schema, ds.table);
  auto whole_engine = CureQueryEngine::Create(whole.get(), 1.0);
  ASSERT_TRUE(whole_engine.ok());

  const std::vector<schema::FactTable> parts = SplitTable(ds.table, 3);
  std::vector<std::unique_ptr<engine::CureCube>> shard_cubes;
  std::vector<std::unique_ptr<CureQueryEngine>> shard_engines;
  for (const auto& part : parts) {
    shard_cubes.push_back(BuildCubeFor(ds.schema, part));
    auto engine = CureQueryEngine::Create(shard_cubes.back().get(), 1.0);
    ASSERT_TRUE(engine.ok());
    shard_engines.push_back(std::move(engine).value());
  }

  const schema::NodeIdCodec& codec = whole->store().codec();
  for (NodeId node = 0; node < codec.num_nodes(); ++node) {
    ResultSink expected(/*retain=*/true);
    ASSERT_TRUE((*whole_engine)->QueryNode(node, &expected).ok());

    PartialMerger merger(ds.schema);
    for (const auto& engine : shard_engines) {
      ResultSink partial(/*retain=*/true);
      ASSERT_TRUE(engine->QueryNode(node, &partial).ok());
      for (const ResultSink::Row& row : partial.rows()) {
        merger.Add(row.dims, row.aggrs.data());
      }
    }
    ResultSink merged(/*retain=*/true);
    ASSERT_TRUE(merger.Finish(-1, 0, &merged).ok());

    EXPECT_EQ(merged.count(), expected.count()) << "node " << node;
    EXPECT_EQ(merged.checksum(), expected.checksum()) << "node " << node;
  }
}

/// Satellite: post-merge iceberg. The threshold must apply to the MERGED
/// counts; a group can clear MINSUP globally while clearing it on no single
/// shard.
TEST(PartialMergerTest, IcebergThresholdAppliesAfterMergeOnly) {
  auto schema = schema::CubeSchema::Create(
      {schema::Dimension::Flat("D", 8)}, 1,
      {{schema::AggFn::kSum, 0, "s"}, {schema::AggFn::kCount, 0, "c"}});
  ASSERT_TRUE(schema.ok());

  PartialMerger merger(*schema);
  // Group {1}: count 2 on each of two shards — fails MINSUP 3 per shard,
  // clears it after the merge (4 >= 3).
  const int64_t shard_a[2] = {10, 2};
  const int64_t shard_b[2] = {5, 2};
  merger.Add({1}, shard_a);
  merger.Add({1}, shard_b);
  // Group {2}: count 2 on one shard only — must be filtered out.
  const int64_t lone[2] = {7, 2};
  merger.Add({2}, lone);

  ResultSink sink(/*retain=*/true);
  ASSERT_TRUE(merger.Finish(/*count_aggregate=*/1, /*min_count=*/3, &sink).ok());
  ASSERT_EQ(sink.count(), 1u);
  EXPECT_EQ(sink.rows()[0].dims[0], 1u);
  EXPECT_EQ(sink.rows()[0].aggrs[0], 15);  // SUM merged
  EXPECT_EQ(sink.rows()[0].aggrs[1], 4);   // COUNT merged

  // An iceberg threshold without a COUNT aggregate is refused.
  ResultSink bad;
  EXPECT_EQ(merger.Finish(-1, 3, &bad).code(), StatusCode::kFailedPrecondition);
}

TEST(PartialMergerTest, IcebergMatchesSingleNodeEngine) {
  gen::Dataset ds = MakeZipfHier(2500, 131);
  auto whole = BuildCubeFor(ds.schema, ds.table);
  auto whole_engine = CureQueryEngine::Create(whole.get(), 1.0);
  ASSERT_TRUE(whole_engine.ok());
  const std::vector<schema::FactTable> parts = SplitTable(ds.table, 3);

  const NodeId node = whole->store().codec().Encode({0, 0, 0});
  for (const int64_t minsup : {2, 5, 20}) {
    ResultSink expected(/*retain=*/true);
    ASSERT_TRUE((*whole_engine)
                    ->QueryNodeCountIceberg(node, /*count_aggregate=*/1,
                                            minsup, &expected)
                    .ok());
    PartialMerger merger(ds.schema);
    for (const auto& part : parts) {
      auto cube = BuildCubeFor(ds.schema, part);
      auto engine = CureQueryEngine::Create(cube.get(), 1.0);
      ASSERT_TRUE(engine.ok());
      ResultSink partial(/*retain=*/true);
      // The scattered query is NOT an iceberg query — thresholds only after
      // the merge.
      ASSERT_TRUE((*engine)->QueryNode(node, &partial).ok());
      for (const ResultSink::Row& row : partial.rows()) {
        merger.Add(row.dims, row.aggrs.data());
      }
    }
    ResultSink merged(/*retain=*/true);
    ASSERT_TRUE(merger.Finish(1, minsup, &merged).ok());
    EXPECT_EQ(merged.count(), expected.count()) << "minsup " << minsup;
    EXPECT_EQ(merged.checksum(), expected.checksum()) << "minsup " << minsup;
  }
}

// ------------------------------------------------------------ replica pick

TEST(CureRouterTest, ReplicaPickPrefersVersionThenStalenessThenRotates) {
  gen::Dataset ds = MakeZipfHier(50, 3);
  ShardMap map;
  map.shards = {{{"127.0.0.1", 7101}, {"127.0.0.1", 7102}, {"127.0.0.1", 7103}}};
  auto router = CureRouter::Create(&ds.schema, map, RouterOptions{});
  ASSERT_TRUE(router.ok()) << router.status().ToString();

  // Highest cube_version wins; staleness breaks the tie.
  (*router)->OverrideReplicaFreshnessForTest(0, 0, /*version=*/5, /*stale=*/10);
  (*router)->OverrideReplicaFreshnessForTest(0, 1, /*version=*/7, /*stale=*/3);
  (*router)->OverrideReplicaFreshnessForTest(0, 2, /*version=*/7, /*stale=*/1);
  std::vector<int> order = (*router)->ReplicaOrderForTest(0);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 2);  // v7, freshest
  EXPECT_EQ(order[1], 1);  // v7, staler
  EXPECT_EQ(order[2], 0);  // v5

  // All equal: successive picks rotate round-robin.
  (*router)->OverrideReplicaFreshnessForTest(0, 0, 7, 1);
  (*router)->OverrideReplicaFreshnessForTest(0, 1, 7, 1);
  (*router)->OverrideReplicaFreshnessForTest(0, 2, 7, 1);
  std::vector<int> firsts;
  for (int i = 0; i < 3; ++i) {
    firsts.push_back((*router)->ReplicaOrderForTest(0)[0]);
  }
  std::sort(firsts.begin(), firsts.end());
  EXPECT_EQ(firsts, (std::vector<int>{0, 1, 2}));
}

// ------------------------------------------- failure handling (fake peers)

/// A scriptable line-protocol backend: answers STATS like a healthy
/// cure_serve and query verbs with whatever the test programs.
class FakeBackend {
 public:
  explicit FakeBackend(std::string query_response)
      : query_response_(std::move(query_response)) {
    auto transport = LineTransport::Start(
        [this](const std::string& line) { return Handle(line); },
        LineTransportOptions{});
    EXPECT_TRUE(transport.ok()) << transport.status().ToString();
    transport_ = std::move(transport).value();
  }

  int port() const { return transport_->port(); }
  void set_query_response(const std::string& response) {
    std::lock_guard<std::mutex> lock(mu_);
    query_response_ = response;
  }
  std::string last_query_line() const {
    std::lock_guard<std::mutex> lock(mu_);
    return last_query_line_;
  }
  int queries_seen() const { return queries_seen_.load(); }
  void Stop() { transport_->Stop(); }

 private:
  std::string Handle(const std::string& line) {
    if (line.rfind("STATS", 0) == 0) {
      return "OK\ncube_version 3\nstaleness_seconds 0\n.\n";
    }
    queries_seen_.fetch_add(1);
    std::lock_guard<std::mutex> lock(mu_);
    last_query_line_ = line;
    return query_response_;
  }

  mutable std::mutex mu_;
  std::string query_response_;
  std::string last_query_line_;
  std::atomic<int> queries_seen_{0};
  std::unique_ptr<LineTransport> transport_;
};

struct FakePairFixture {
  gen::Dataset ds = MakeZipfHier(50, 5);
  FakeBackend bad;
  FakeBackend good;
  std::unique_ptr<CureRouter> router;

  /// One shard, two replicas: replica 0 scripted with `bad_response`,
  /// replica 1 healthy. `ds.schema` has 4 aggregates, so an ALL row is
  /// "s<TAB>c<TAB>lo<TAB>hi".
  explicit FakePairFixture(const std::string& bad_response)
      : bad(bad_response),
        good("OK 1 0000000000000001 MISS trace=1\n10\t2\t3\t7\n.\n") {
    ShardMap map;
    map.shards = {{{"127.0.0.1", bad.port()}, {"127.0.0.1", good.port()}}};
    // Freeze the rotation so replica 0 (bad) is always tried first.
    auto created = CureRouter::Create(&ds.schema, map, RouterOptions{});
    EXPECT_TRUE(created.ok()) << created.status().ToString();
    router = std::move(created).value();
    router->OverrideReplicaFreshnessForTest(0, 0, /*version=*/9, /*stale=*/0);
    router->OverrideReplicaFreshnessForTest(0, 1, /*version=*/1, /*stale=*/9);
  }
};

TEST(CureRouterTest, RetriesNextReplicaOnIoError) {
  FakePairFixture fx("ERR IOError injected read failure\n.\n");
  const std::string response = fx.router->HandleLine("QUERY ALL");
  EXPECT_EQ(response.rfind("OK 1 ", 0), 0u) << response;
  EXPECT_NE(response.find("10\t2\t3\t7"), std::string::npos) << response;
  EXPECT_EQ(fx.router->metrics()->counter("backend_retries_total")->value(), 1u);
  // The failed replica is DOWN, not ejected — a later probe may restore it.
  const std::string health = fx.router->HandleLine("HEALTH");
  EXPECT_NE(health.find("replica 0 127.0.0.1:" +
                        std::to_string(fx.bad.port()) + " DOWN"),
            std::string::npos)
      << health;
  fx.bad.set_query_response("OK 0 0000000000000000 MISS trace=1\n.\n");
  fx.router->ProbeHealth();
  EXPECT_NE(fx.router->HandleLine("HEALTH").find("replica 0"), std::string::npos);
  EXPECT_EQ(fx.router->HandleLine("HEALTH").find("DOWN"), std::string::npos);
}

TEST(CureRouterTest, EjectsReplicaOnDataLossPermanently) {
  FakePairFixture fx("ERR DataLoss cube section checksum mismatch\n.\n");
  const std::string response = fx.router->HandleLine("QUERY ALL");
  EXPECT_EQ(response.rfind("OK 1 ", 0), 0u) << response;
  std::string health = fx.router->HandleLine("HEALTH");
  EXPECT_NE(health.find("EJECTED"), std::string::npos) << health;
  EXPECT_EQ(fx.router->metrics()->counter("replicas_ejected_total")->value(), 1u);

  // Health probes do NOT resurrect an ejected replica (its STATS would
  // answer OK — the process is fine, the data is not).
  fx.router->ProbeHealth();
  health = fx.router->HandleLine("HEALTH");
  EXPECT_NE(health.find("EJECTED"), std::string::npos) << health;

  // Subsequent queries no longer touch it.
  const int before = fx.bad.queries_seen();
  EXPECT_EQ(fx.router->HandleLine("QUERY ALL").rfind("OK 1 ", 0), 0u);
  EXPECT_EQ(fx.bad.queries_seen(), before);
}

TEST(CureRouterTest, DeterministicErrorsFailFastWithoutFailover) {
  FakePairFixture fx("ERR NotFound node relation missing\n.\n");
  const std::string response = fx.router->HandleLine("QUERY ALL");
  EXPECT_EQ(response.rfind("ERR NotFound", 0), 0u) << response;
  // No retry burned, nobody marked down or ejected.
  EXPECT_EQ(fx.router->metrics()->counter("backend_retries_total")->value(), 0u);
  const std::string health = fx.router->HandleLine("HEALTH");
  EXPECT_EQ(health.find("DOWN"), std::string::npos) << health;
  EXPECT_EQ(health.find("EJECTED"), std::string::npos) << health;
}

TEST(CureRouterTest, PropagatesClientTraceIdToBackendsAndResponse) {
  FakePairFixture fx("ERR IOError nope\n.\n");
  const std::string response = fx.router->HandleLine("QUERY ALL trace=424242");
  EXPECT_NE(response.find(" trace=424242\n"), std::string::npos) << response;
  // The scattered backend line carries the same id (read from the replica
  // that served it).
  EXPECT_NE(fx.good.last_query_line().find("trace=424242"), std::string::npos)
      << fx.good.last_query_line();
  // Malformed ids are rejected, not silently re-minted.
  EXPECT_EQ(fx.router->HandleLine("QUERY ALL trace=abc").rfind(
                "ERR InvalidArgument", 0),
            0u);
}

TEST(CureRouterTest, ShardUnavailableWhenAllReplicasFail) {
  FakeBackend a("ERR IOError a\n.\n");
  FakeBackend b("ERR IOError b\n.\n");
  gen::Dataset ds = MakeZipfHier(50, 6);
  ShardMap map;
  map.shards = {{{"127.0.0.1", a.port()}, {"127.0.0.1", b.port()}}};
  auto router = CureRouter::Create(&ds.schema, map, RouterOptions{});
  ASSERT_TRUE(router.ok());
  const std::string response = (*router)->HandleLine("QUERY ALL");
  EXPECT_EQ(response.rfind("ERR IOError", 0), 0u) << response;
  EXPECT_NE(response.find("exhausted all replicas"), std::string::npos)
      << response;
}

// ------------------------------------------------------- loopback capstone

/// Parses a full protocol response into (ok, count, checksum token, rows).
struct ParsedResponse {
  bool ok = false;
  uint64_t count = 0;
  std::string checksum;
  std::vector<std::string> rows;  // sorted
};

ParsedResponse ParseResponse(const std::string& response) {
  ParsedResponse out;
  std::istringstream in(response);
  std::string header;
  EXPECT_TRUE(static_cast<bool>(std::getline(in, header)));
  std::istringstream fields(header);
  std::string verdict;
  fields >> verdict;
  out.ok = verdict == "OK";
  if (!out.ok) return out;
  fields >> out.count >> out.checksum;
  std::string row;
  while (std::getline(in, row)) {
    if (row == ".") break;
    out.rows.push_back(row);
  }
  std::sort(out.rows.begin(), out.rows.end());
  return out;
}

/// The tentpole acceptance fixture: a 3-shard × 2-replica loopback cluster
/// of real CubeServers/TcpLineServers next to a single-node server over the
/// unpartitioned fact table.
struct ClusterFixture {
  gen::Dataset ds;
  // The cubes reference their fact tables; the partitions must outlive them.
  std::vector<schema::FactTable> parts;
  std::unique_ptr<engine::CureCube> whole_cube;
  std::unique_ptr<CubeServer> whole_server;
  std::unique_ptr<TcpLineServer> whole_tcp;

  std::vector<std::unique_ptr<engine::CureCube>> shard_cubes;
  // [shard][replica] — two independent server stacks per shard cube.
  std::vector<std::vector<std::unique_ptr<CubeServer>>> servers;
  std::vector<std::vector<std::unique_ptr<TcpLineServer>>> tcps;
  std::unique_ptr<CureRouter> router;

  explicit ClusterFixture(uint64_t tuples = 2400, uint64_t seed = 77) {
    ds = MakeZipfHier(tuples, seed);
    whole_cube = BuildCubeFor(ds.schema, ds.table);
    whole_server = MakeServer(whole_cube.get());
    whole_tcp = MakeTcp(whole_server.get());

    ShardMap map;
    parts = SplitTable(ds.table, 3);
    for (const auto& part : parts) {
      shard_cubes.push_back(BuildCubeFor(ds.schema, part));
      servers.emplace_back();
      tcps.emplace_back();
      std::vector<BackendAddress> replicas;
      for (int r = 0; r < 2; ++r) {
        servers.back().push_back(MakeServer(shard_cubes.back().get()));
        tcps.back().push_back(MakeTcp(servers.back().back().get()));
        replicas.push_back({"127.0.0.1", tcps.back().back()->port()});
      }
      map.shards.push_back(std::move(replicas));
    }
    auto created = CureRouter::Create(&ds.schema, map, RouterOptions{});
    EXPECT_TRUE(created.ok()) << created.status().ToString();
    router = std::move(created).value();
  }

  static std::unique_ptr<CubeServer> MakeServer(const engine::CureCube* cube) {
    CubeServerOptions options;
    options.num_threads = 2;
    auto server = CubeServer::Create(cube, options);
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    return std::move(server).value();
  }

  static std::unique_ptr<TcpLineServer> MakeTcp(CubeServer* server) {
    auto tcp = TcpLineServer::Start(server, TcpServerOptions{});
    EXPECT_TRUE(tcp.ok()) << tcp.status().ToString();
    return std::move(tcp).value();
  }

  /// Asserts the router's answer is byte-identical (rows + checksum +
  /// count) to the single-node server's for `line`.
  void ExpectMatchesSingleNode(const std::string& line) {
    const ParsedResponse via_router = ParseResponse(router->HandleLine(line));
    const ParsedResponse direct = ParseResponse(whole_tcp->HandleLine(line));
    ASSERT_TRUE(direct.ok) << line;
    ASSERT_TRUE(via_router.ok) << line;
    EXPECT_EQ(via_router.count, direct.count) << line;
    EXPECT_EQ(via_router.checksum, direct.checksum) << line;
    EXPECT_EQ(via_router.rows, direct.rows) << line;
  }
};

TEST(RouterClusterTest, ScatterGatherMatchesSingleNodeAndSurvivesReplicaKill) {
  ClusterFixture fx;
  const std::vector<std::string> workload = {
      "QUERY ALL",
      "QUERY A_L0,B_L0,C_L0",
      "QUERY A_L1,B_L1",
      "QUERY A_L2",
      "QUERY B_L0,C_L0",
      "ICEBERG A_L0,B_L0 3",
      "ICEBERG A_L1 20",
      "SLICE A_L0,B_L0 A_L2=0",
      "SLICE A_L1,B_L0,C_L0 B_L1=1",
      "SLICE A_L0,B_L0,C_L0 A_L1=2 MINSUP 2",
  };
  for (const std::string& line : workload) fx.ExpectMatchesSingleNode(line);

  // Kill one replica of EVERY shard; the router must fail over and keep
  // returning byte-identical results.
  for (auto& shard : fx.tcps) shard[0]->Stop();
  for (const std::string& line : workload) fx.ExpectMatchesSingleNode(line);
  const std::string health = fx.router->HandleLine("HEALTH");
  EXPECT_NE(health.find("DOWN"), std::string::npos) << health;

  // Deterministic errors pass through unchanged.
  EXPECT_EQ(fx.router->HandleLine("QUERY bogus").rfind("ERR ", 0), 0u);

  // Observability: the router's own series exist in both expositions.
  const std::string stats = fx.router->HandleLine("STATS");
  EXPECT_NE(stats.find("queries_total"), std::string::npos);
  EXPECT_NE(stats.find("backend_s0_r0_latency_count"), std::string::npos);
  EXPECT_NE(stats.find("backend_all_latency_count"), std::string::npos);
  const std::string metrics = fx.router->HandleLine("METRICS");
  EXPECT_NE(metrics.find("cure_router_queries_total"), std::string::npos);
  EXPECT_NE(metrics.find("cure_router_backend_all_latency"), std::string::npos);
}

/// Body lines of a BATCH response with provenance normalized away: the
/// trailing cache token on "= " section headers legitimately differs
/// between the router (SCATTER) and a single server (HIT/SEMANTIC/MISS),
/// and derivation emits rows in lexicographic rather than engine order.
std::vector<std::string> NormalizedBatchRows(const std::string& response) {
  std::vector<std::string> rows;
  std::istringstream in(response);
  std::string line;
  EXPECT_TRUE(static_cast<bool>(std::getline(in, line))) << response;
  while (std::getline(in, line)) {
    if (line == ".") break;
    if (line.rfind("= ", 0) == 0) line.erase(line.find_last_of(' '));
    rows.push_back(line);
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

TEST(RouterClusterTest, NavigationTopKAndBatchMatchSingleNode) {
  ClusterFixture fx(1600, 13);

  // ROLLUP/DRILL resolve on the router's own lattice and then scatter like
  // QUERY/SLICE — byte-identical to the single-node server's same verb.
  const std::vector<std::string> nav = {
      "DRILL ALL A",
      "DRILL A_L2 B",
      "ROLLUP A_L0,B_L0 A",
      "ROLLUP A_L0,B_L0,C_L0 B B_L1=1",
      "ROLLUP A_L0,B_L0 A MINSUP 2",
      "TOPK A_L0,B_L0 5",
      "TOPK A_L1 3",
      "TOPK ALL 1",
  };
  for (const std::string& line : nav) fx.ExpectMatchesSingleNode(line);

  // The landed node is announced in the header and the body matches a plain
  // QUERY of that node.
  const std::string rollup = fx.router->HandleLine("ROLLUP A_L0 A");
  EXPECT_NE(rollup.find(" node=A_L1"), std::string::npos) << rollup;
  const ParsedResponse via_rollup = ParseResponse(rollup);
  const ParsedResponse via_query =
      ParseResponse(fx.router->HandleLine("QUERY A_L1"));
  EXPECT_EQ(via_rollup.checksum, via_query.checksum);
  EXPECT_EQ(via_rollup.rows, via_query.rows);

  // TOPK repeats deterministically through the scatter path (the header
  // carries a freshly minted trace id; the body must be byte-identical).
  const auto body = [](const std::string& response) {
    return response.substr(response.find('\n') + 1);
  };
  EXPECT_EQ(body(fx.router->HandleLine("TOPK A_L0,B_L0 5")),
            body(fx.router->HandleLine("TOPK A_L0,B_L0 5")));

  // BATCH: same sections, same per-section rows, same xor'd top checksum.
  const std::string batch_line = "BATCH A_L1 A_L0,B_L0 ALL";
  const std::string via_router = fx.router->HandleLine(batch_line);
  const std::string direct = fx.whole_tcp->HandleLine(batch_line);
  EXPECT_EQ(via_router.rfind("OK 3 ", 0), 0u) << via_router;
  EXPECT_NE(via_router.find(" BATCH "), std::string::npos) << via_router;
  {
    std::istringstream router_header(via_router), direct_header(direct);
    std::string ok_r, ok_d;
    uint64_t count_r = 0, count_d = 0;
    std::string checksum_r, checksum_d;
    router_header >> ok_r >> count_r >> checksum_r;
    direct_header >> ok_d >> count_d >> checksum_d;
    EXPECT_EQ(count_r, count_d);
    EXPECT_EQ(checksum_r, checksum_d);
  }
  EXPECT_EQ(NormalizedBatchRows(via_router), NormalizedBatchRows(direct));
  // Sections come back in input order regardless of execution order.
  const size_t at_a1 = via_router.find("= A_L1 ");
  const size_t at_fine = via_router.find("= A_L0,B_L0 ");
  const size_t at_all = via_router.find("= ALL ");
  ASSERT_NE(at_a1, std::string::npos) << via_router;
  ASSERT_NE(at_fine, std::string::npos) << via_router;
  ASSERT_NE(at_all, std::string::npos) << via_router;
  EXPECT_LT(at_a1, at_fine);
  EXPECT_LT(at_fine, at_all);

  // Navigation off the lattice edge and malformed verbs fail on the router
  // itself, before any backend is touched.
  EXPECT_EQ(fx.router->HandleLine("ROLLUP ALL A").rfind("ERR InvalidArgument", 0),
            0u);
  EXPECT_EQ(fx.router->HandleLine("DRILL A_L0 A").rfind("ERR InvalidArgument", 0),
            0u);
  EXPECT_EQ(fx.router->HandleLine("ROLLUP A_L0 Z").rfind("ERR NotFound", 0), 0u);
  EXPECT_EQ(
      fx.router->HandleLine("TOPK A_L0 5 MINSUP 2").rfind("ERR InvalidArgument", 0),
      0u);
  EXPECT_EQ(fx.router->HandleLine("TOPK A_L0 0").rfind("ERR InvalidArgument", 0),
            0u);
  EXPECT_EQ(fx.router->HandleLine("BATCH").rfind("ERR InvalidArgument", 0), 0u);
  EXPECT_EQ(fx.router->HandleLine("BATCH bogus").rfind("ERR ", 0), 0u);

  // After this many scatters the backend connection pool must have cycled:
  // both expositions carry the pool series and reuses are non-zero.
  const std::string metrics = fx.router->HandleLine("METRICS");
  EXPECT_NE(metrics.find("cure_router_backend_pool_connects"),
            std::string::npos);
  uint64_t reuses = 0;
  std::istringstream metric_lines(metrics);
  for (std::string line; std::getline(metric_lines, line);) {
    std::istringstream fields(line);
    std::string name;
    if (fields >> name && name == "cure_router_backend_pool_reuses") {
      fields >> reuses;
    }
  }
  EXPECT_GT(reuses, 0u) << metrics;
  EXPECT_NE(fx.router->HandleLine("STATS").find("backend_pool_reuses"),
            std::string::npos);
}

// ------------------------------------------------------ connection pooling

TEST(BackendClientTest, ReusesPooledConnectionsAcrossRoundTrips) {
  FakeBackend backend("OK 0 0000000000000000 MISS trace=1\n.\n");
  router::BackendClient client(5.0, 30.0);
  const BackendAddress addr{"127.0.0.1", backend.port()};
  for (int i = 0; i < 3; ++i) {
    auto response = client.RoundTrip(addr, "QUERY ALL");
    ASSERT_TRUE(response.ok()) << response.status().ToString();
  }
  const auto stats = client.pool_stats();
  EXPECT_EQ(stats.connects, 1u);
  EXPECT_EQ(stats.reuses, 2u);
  EXPECT_EQ(stats.open, 1u);
  EXPECT_EQ(stats.discards_idle, 0u);
  EXPECT_EQ(stats.retries_stale, 0u);
  EXPECT_EQ(backend.queries_seen(), 3);
}

TEST(BackendClientTest, DiscardsIdleExpiredConnectionsOnAcquire) {
  FakeBackend backend("OK 0 0000000000000000 MISS trace=1\n.\n");
  router::BackendClient client(5.0, /*idle_timeout_seconds=*/1e-6);
  const BackendAddress addr{"127.0.0.1", backend.port()};
  ASSERT_TRUE(client.RoundTrip(addr, "QUERY ALL").ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  ASSERT_TRUE(client.RoundTrip(addr, "QUERY ALL").ok());
  const auto stats = client.pool_stats();
  EXPECT_EQ(stats.connects, 2u);
  EXPECT_EQ(stats.reuses, 0u);
  EXPECT_EQ(stats.discards_idle, 1u);
}

TEST(BackendClientTest, RetriesOnceWhenPooledConnectionWentStale) {
  // A pooled connection whose server restarted dies before producing any
  // response byte; the round trip must transparently reconnect and succeed.
  const std::string response = "OK 0 0000000000000000 MISS trace=1\n.\n";
  auto first = LineTransport::Start(
      [&](const std::string&) { return response; }, LineTransportOptions{});
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  const int port = (*first)->port();

  router::BackendClient client(5.0, 30.0);
  const BackendAddress addr{"127.0.0.1", port};
  ASSERT_TRUE(client.RoundTrip(addr, "QUERY ALL").ok());
  ASSERT_EQ(client.pool_stats().open, 1u);

  (*first)->Stop();  // reaps the pooled connection server-side
  LineTransportOptions same_port;
  same_port.port = port;
  auto second = LineTransport::Start(
      [&](const std::string&) { return response; }, same_port);
  ASSERT_TRUE(second.ok()) << second.status().ToString();

  auto retried = client.RoundTrip(addr, "QUERY ALL");
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  const auto stats = client.pool_stats();
  EXPECT_EQ(stats.retries_stale, 1u);
  EXPECT_EQ(stats.connects, 2u);

  // With nobody listening at all, the stale retry burns once and fails —
  // a request is never resent more than one time.
  (*second)->Stop();
  EXPECT_FALSE(client.RoundTrip(addr, "QUERY ALL").ok());
  EXPECT_EQ(client.pool_stats().retries_stale, 2u);
}

// ------------------------------------------------------- stalled backends

/// A pathological raw-socket backend: accepts, reads the request, answers
/// with the FIRST HALF of a reply, then holds the connection open forever
/// without another byte. Exercises the mid-response SO_RCVTIMEO path that a
/// scripted LineTransport (which always answers completely) cannot.
class StalledBackend {
 public:
  explicit StalledBackend(std::string half_reply)
      : half_reply_(std::move(half_reply)) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_OR_ABORT(listen_fd_ >= 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    ASSERT_OR_ABORT(
        ::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
        0);
    ASSERT_OR_ABORT(::listen(listen_fd_, 8) == 0);
    socklen_t len = sizeof(addr);
    ASSERT_OR_ABORT(
        ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
        0);
    port_ = ntohs(addr.sin_port);
    thread_ = std::thread([this] { Serve(); });
  }
  ~StalledBackend() { Stop(); }

  int port() const { return port_; }
  void Stop() {
    if (stopped_.exchange(true)) return;
    ::shutdown(listen_fd_, SHUT_RDWR);
    thread_.join();
    ::close(listen_fd_);
    std::lock_guard<std::mutex> lock(mu_);
    for (int fd : held_) ::close(fd);
    held_.clear();
  }

 private:
  static void ASSERT_OR_ABORT(bool ok) { ASSERT_TRUE(ok) << strerror(errno); }

  void Serve() {
    while (!stopped_.load()) {
      pollfd pfd{listen_fd_, POLLIN, 0};
      if (::poll(&pfd, 1, 50) <= 0) continue;
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) continue;
      char buf[256];
      (void)::recv(fd, buf, sizeof(buf), 0);  // the request line
      (void)::send(fd, half_reply_.data(), half_reply_.size(), MSG_NOSIGNAL);
      std::lock_guard<std::mutex> lock(mu_);
      held_.push_back(fd);  // ...and never speak again
    }
  }

  std::string half_reply_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stopped_{false};
  std::mutex mu_;
  std::vector<int> held_;
  std::thread thread_;
};

TEST(BackendClientTest, StallMidResponseClassifiesAsDeadlineExceeded) {
  StalledBackend stalled("OK 1 00000000");  // header cut mid-checksum
  router::BackendClient client(/*timeout_seconds=*/0.25);
  const BackendAddress addr{"127.0.0.1", stalled.port()};
  auto reply = client.RoundTrip(addr, "QUERY ALL");
  ASSERT_FALSE(reply.ok());
  const Status status = reply.status();
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded) << status.ToString();
  const std::string& message = status.message();
  EXPECT_NE(message.find("127.0.0.1:" + std::to_string(stalled.port())),
            std::string::npos)
      << message;
  EXPECT_NE(message.find("bytes read"), std::string::npos) << message;
}

TEST(CureRouterTest, HedgeRescuesQueryFromStalledReplica) {
  StalledBackend stalled("OK 1 00000000");
  FakeBackend good("OK 1 0000000000000001 MISS trace=1\n10\t2\t3\t7\n.\n");
  gen::Dataset ds = MakeZipfHier(50, 21);
  ShardMap map;
  map.shards = {{{"127.0.0.1", stalled.port()}, {"127.0.0.1", good.port()}}};
  RouterOptions options;
  options.backend_timeout_seconds = 1.0;  // the stall alone would eat this
  options.hedge_seconds = 0.05;           // ...but the hedge fires at 50ms
  auto router = CureRouter::Create(&ds.schema, map, options);
  ASSERT_TRUE(router.ok()) << router.status().ToString();
  // Pin the stalled replica first so the HEDGE, not replica order, rescues.
  (*router)->OverrideReplicaFreshnessForTest(0, 0, /*version=*/9, /*stale=*/0);
  (*router)->OverrideReplicaFreshnessForTest(0, 1, /*version=*/1, /*stale=*/9);

  const auto start = std::chrono::steady_clock::now();
  const std::string response = (*router)->HandleLine("QUERY ALL");
  const auto elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                              std::chrono::steady_clock::now() - start)
                              .count();
  // Serial check against the good replica's scripted relation: one ALL row
  // with s=10 c=2 lo=3 hi=7, re-aggregated (sum/count add, min/max keep).
  EXPECT_EQ(response.rfind("OK 1 ", 0), 0u) << response;
  EXPECT_NE(response.find("10\t2\t3\t7"), std::string::npos) << response;
  // The answer must arrive on the hedge's clock, far inside the stall
  // timeout (generous bound: CI machines wobble, 1.0s stall does not).
  EXPECT_LT(elapsed_ms, 900) << "hedge did not overlap the stall";
  EXPECT_GE((*router)->metrics()->counter("hedges_total")->value(), 1u);
  // First answer wins; the stalled attempt dies quietly in the background
  // (the router's destructor drains it without touching freed state).
}

TEST(RouterClusterTest, ServesOverItsOwnLoopbackTransport) {
  ClusterFixture fx(1200, 11);
  auto transport = LineTransport::Start(
      [raw = fx.router.get()](const std::string& line) {
        return raw->HandleLine(line);
      },
      LineTransportOptions{});
  ASSERT_TRUE(transport.ok());

  router::BackendClient client(5.0);
  auto reply = client.Query({"127.0.0.1", (*transport)->port()},
                            "QUERY A_L1,B_L1 trace=99");
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_TRUE(reply->status.ok()) << reply->status.ToString();
  EXPECT_EQ(reply->trace_id, 99u);

  const ParsedResponse direct =
      ParseResponse(fx.whole_tcp->HandleLine("QUERY A_L1,B_L1"));
  EXPECT_EQ(reply->count, direct.count);
  std::vector<std::string> rows = reply->rows;
  std::sort(rows.begin(), rows.end());
  EXPECT_EQ(rows, direct.rows);
}

}  // namespace
}  // namespace cure
