#include "cube/source.h"

#include <gtest/gtest.h>

#include "storage/file_io.h"

namespace cure {
namespace cube {
namespace {

using schema::AggFn;
using schema::CubeSchema;
using schema::Dimension;
using schema::FactTable;

CubeSchema MakeSchema() {
  std::vector<Dimension> dims;
  dims.push_back(Dimension::Linear("A", {12, 4, 2}));
  dims.push_back(Dimension::Flat("B", 5));
  auto schema = CubeSchema::Create(
      std::move(dims), 1, {{AggFn::kSum, 0, "s"}, {AggFn::kCount, 0, "c"}});
  EXPECT_TRUE(schema.ok());
  return std::move(schema).value();
}

FactTable MakeTable() {
  FactTable table(2, 1);
  for (uint32_t i = 0; i < 10; ++i) {
    const uint32_t dims[2] = {i, i % 5};
    const int64_t m = 10 * i;
    table.AppendRow(dims, &m);
  }
  return table;
}

TEST(FactTableSourceTest, LiftsMeasures) {
  CubeSchema schema = MakeSchema();
  FactTable table = MakeTable();
  FactTableSource source(&table, &schema);
  EXPECT_EQ(source.num_rows(), 10u);
  EXPECT_EQ(source.native_level(0), 0);
  uint32_t dims[2];
  int64_t aggrs[2];
  ASSERT_TRUE(source.GetRow(3, dims, aggrs).ok());
  EXPECT_EQ(dims[0], 3u);
  EXPECT_EQ(dims[1], 3u);
  EXPECT_EQ(aggrs[0], 30);  // SUM lift = raw measure
  EXPECT_EQ(aggrs[1], 1);   // COUNT lift = 1
  EXPECT_FALSE(source.GetRow(10, dims, aggrs).ok());
}

TEST(FactRelationSourceTest, ReadsThroughCache) {
  CubeSchema schema = MakeSchema();
  FactTable table = MakeTable();
  const std::string path = "/tmp/cure_source_test.bin";
  auto rel = storage::Relation::CreateFile(path, table.RecordSize());
  ASSERT_TRUE(rel.ok());
  ASSERT_TRUE(table.WriteTo(&rel.value()).ok());
  ASSERT_TRUE(rel->Seal().ok());

  auto source = FactRelationSource::Create(&rel.value(), &schema, 0.5);
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  uint32_t dims[2];
  int64_t aggrs[2];
  ASSERT_TRUE((*source)->GetRow(2, dims, aggrs).ok());  // cached prefix
  EXPECT_EQ(dims[0], 2u);
  EXPECT_EQ(aggrs[0], 20);
  ASSERT_TRUE((*source)->GetRow(9, dims, aggrs).ok());  // disk
  EXPECT_EQ(dims[0], 9u);
  EXPECT_EQ(aggrs[0], 90);
  EXPECT_GE((*source)->cache().hits(), 1u);
  EXPECT_GE((*source)->cache().misses(), 1u);
  ASSERT_TRUE(storage::RemoveFile(path).ok());
}

TEST(FactRelationSourceTest, RejectsWrongRecordSize) {
  CubeSchema schema = MakeSchema();
  storage::Relation rel = storage::Relation::Memory(7);
  EXPECT_FALSE(FactRelationSource::Create(&rel, &schema, 1.0).ok());
}

AggTable MakeNTable() {
  // Node N with dim A at level 1, B at leaf.
  AggTable n;
  n.native_levels = {1, 0};
  n.dims = {{0, 1, 2, 3}, {0, 1, 2, 3}};
  n.aggrs = {{5, 6, 7, 8}, {2, 2, 3, 1}};
  n.num_rows = 4;
  return n;
}

TEST(AggTableSourceTest, ExposesNativeLevels) {
  AggTable n = MakeNTable();
  AggTableSource source(&n);
  EXPECT_EQ(source.num_rows(), 4u);
  EXPECT_EQ(source.native_level(0), 1);
  EXPECT_EQ(source.native_level(1), 0);
  uint32_t dims[2];
  int64_t aggrs[2];
  ASSERT_TRUE(source.GetRow(2, dims, aggrs).ok());
  EXPECT_EQ(dims[0], 2u);
  EXPECT_EQ(aggrs[0], 7);
  EXPECT_EQ(aggrs[1], 3);  // already-lifted count
}

TEST(AggTableTest, BytesAccounting) {
  AggTable n = MakeNTable();
  // 2 stored dims * 4 bytes + 2 aggrs * 8 bytes = 24 per row, 4 rows.
  EXPECT_EQ(n.bytes(), 96u);
  n.native_levels[0] = kNativeAll;  // projected out
  EXPECT_EQ(n.bytes(), 80u);
}

TEST(SourceSetTest, RoutesByNamespace) {
  CubeSchema schema = MakeSchema();
  FactTable table = MakeTable();
  AggTable n = MakeNTable();
  SourceSet sources(&schema);
  sources.Register(kSourceFact, std::make_shared<FactTableSource>(&table, &schema));
  sources.Register(kSourceNodeN, std::make_shared<AggTableSource>(&n));

  uint32_t dims[2];
  int64_t aggrs[2];
  ASSERT_TRUE(sources.GetRow(MakeRowId(kSourceFact, 4), dims, aggrs).ok());
  EXPECT_EQ(dims[0], 4u);
  ASSERT_TRUE(sources.GetRow(MakeRowId(kSourceNodeN, 1), dims, aggrs).ok());
  EXPECT_EQ(aggrs[0], 6);
  EXPECT_FALSE(sources.GetRow(MakeRowId(7, 0), dims, aggrs).ok());
}

TEST(SourceSetTest, ProjectsFromLeaf) {
  CubeSchema schema = MakeSchema();
  FactTable table = MakeTable();
  SourceSet sources(&schema);
  sources.Register(kSourceFact, std::make_shared<FactTableSource>(&table, &schema));
  const uint32_t native[2] = {11, 4};
  uint32_t out[2];
  // Node (A@2, B@0): project leaf 11 up two levels.
  ASSERT_TRUE(sources.ProjectDims(kSourceFact, native, {2, 0}, out).ok());
  EXPECT_EQ(out[0], schema.dim(0).CodeAt(11, 2));
  EXPECT_EQ(out[1], 4u);
  // Node (A@1, B@ALL): only one output code.
  ASSERT_TRUE(sources.ProjectDims(kSourceFact, native, {1, 1}, out).ok());
  EXPECT_EQ(out[0], schema.dim(0).CodeAt(11, 1));
}

TEST(SourceSetTest, ProjectsFromAggregatedLevels) {
  CubeSchema schema = MakeSchema();
  AggTable n = MakeNTable();
  SourceSet sources(&schema);
  sources.Register(kSourceNodeN, std::make_shared<AggTableSource>(&n));
  const uint32_t native[2] = {3, 2};  // A code at level 1
  uint32_t out[2];
  // Project from native level 1 to level 2.
  ASSERT_TRUE(sources.ProjectDims(kSourceNodeN, native, {2, 0}, out).ok());
  // Level-1 code 3 -> level-2 block: cardinalities 4 -> 2, block roll-up.
  auto map = schema.dim(0).LevelToLevelMap(1, 2);
  ASSERT_TRUE(map.ok());
  EXPECT_EQ(out[0], (*map)[3]);
  EXPECT_EQ(out[1], 2u);
  // Requesting a *finer* level than native must fail.
  EXPECT_FALSE(sources.ProjectDims(kSourceNodeN, native, {0, 0}, out).ok());
}

TEST(RowIdTest, PackAndUnpack) {
  const RowId id = MakeRowId(kSourceNodeN, 123456789);
  EXPECT_EQ(RowIdSource(id), kSourceNodeN);
  EXPECT_EQ(RowIdOrdinal(id), 123456789u);
  EXPECT_EQ(RowIdSource(MakeRowId(kSourceFact, 5)), kSourceFact);
  // Ordering within a namespace: ordinal order; across namespaces: fact
  // rows order before N rows (source tag in the top bits).
  EXPECT_LT(MakeRowId(kSourceFact, 99), MakeRowId(kSourceNodeN, 0));
}

}  // namespace
}  // namespace cube
}  // namespace cure
