#include <gtest/gtest.h>

#include "cube/measures.h"
#include "engine/cure.h"
#include "gen/datasets.h"
#include "gen/random.h"
#include "query/node_query.h"
#include "query/reference.h"

namespace cure {
namespace {

using engine::BuildCure;
using engine::CureOptions;
using engine::FactInput;
using query::ResultSink;
using schema::AggFn;
using schema::AggregateSpec;
using schema::NodeId;

TEST(AggregatorTest, LiftAndCombine) {
  std::vector<schema::Dimension> dims;
  dims.push_back(schema::Dimension::Flat("A", 2));
  auto schema = schema::CubeSchema::Create(
      std::move(dims), 2,
      {{AggFn::kSum, 0, "sum0"},
       {AggFn::kCount, 0, "cnt"},
       {AggFn::kMin, 1, "min1"},
       {AggFn::kMax, 1, "max1"}});
  ASSERT_TRUE(schema.ok());
  cube::Aggregator agg(*schema);
  ASSERT_EQ(agg.num_aggregates(), 4);

  int64_t acc[4];
  agg.Init(acc);
  const int64_t raw_a[2] = {10, 5};
  const int64_t raw_b[2] = {-3, 9};
  int64_t lifted[4];
  agg.Lift(raw_a, lifted);
  EXPECT_EQ(lifted[0], 10);
  EXPECT_EQ(lifted[1], 1);  // COUNT lifts to 1
  EXPECT_EQ(lifted[2], 5);
  EXPECT_EQ(lifted[3], 5);
  agg.Combine(acc, lifted);
  agg.Lift(raw_b, lifted);
  agg.Combine(acc, lifted);
  EXPECT_EQ(acc[0], 7);
  EXPECT_EQ(acc[1], 2);
  EXPECT_EQ(acc[2], 5);
  EXPECT_EQ(acc[3], 9);
}

TEST(AggregatorTest, ReAggregationOfPartials) {
  // Combine must be associative over partial results — the external-path
  // requirement (observation 3 of the paper).
  std::vector<schema::Dimension> dims;
  dims.push_back(schema::Dimension::Flat("A", 2));
  auto schema = schema::CubeSchema::Create(
      std::move(dims), 1,
      {{AggFn::kSum, 0, "s"}, {AggFn::kCount, 0, "c"}, {AggFn::kMin, 0, "mn"}});
  ASSERT_TRUE(schema.ok());
  cube::Aggregator agg(*schema);
  gen::Rng rng(5);
  std::vector<int64_t> values(100);
  for (auto& v : values) v = static_cast<int64_t>(rng.NextRange(1000)) - 500;

  int64_t direct[3];
  agg.Init(direct);
  int64_t lifted[3];
  for (int64_t v : values) {
    agg.Lift(&v, lifted);
    agg.Combine(direct, lifted);
  }
  // Two-level: partials of 10, then combined.
  int64_t total[3];
  agg.Init(total);
  for (size_t base = 0; base < values.size(); base += 10) {
    int64_t partial[3];
    agg.Init(partial);
    for (size_t i = base; i < base + 10; ++i) {
      agg.Lift(&values[i], lifted);
      agg.Combine(partial, lifted);
    }
    agg.Combine(total, partial);
  }
  for (int i = 0; i < 3; ++i) EXPECT_EQ(direct[i], total[i]);
}

// Engine equivalence per aggregate-function combination.
struct AggCase {
  std::vector<AggregateSpec> specs;
  const char* label;
};

class AggFunctionTest : public ::testing::TestWithParam<AggCase> {};

TEST_P(AggFunctionTest, CubeMatchesReference) {
  const AggCase& p = GetParam();
  gen::Dataset ds;
  std::vector<schema::Dimension> dims;
  dims.push_back(schema::Dimension::Linear("A", {20, 4}));
  dims.push_back(schema::Dimension::Flat("B", 8));
  auto schema = schema::CubeSchema::Create(std::move(dims), 2, p.specs);
  ASSERT_TRUE(schema.ok());
  ds.schema = std::move(schema).value();
  ds.table = schema::FactTable(2, 2);
  gen::Rng rng(71);
  for (uint64_t t = 0; t < 500; ++t) {
    const uint32_t row[2] = {static_cast<uint32_t>(rng.NextRange(20)),
                             static_cast<uint32_t>(rng.NextRange(8))};
    const int64_t ms[2] = {static_cast<int64_t>(rng.NextRange(200)) - 100,
                           static_cast<int64_t>(rng.NextRange(1000))};
    ds.table.AppendRow(row, ms);
  }

  // In-memory and forced-external builds must both match the reference.
  storage::Relation rel = storage::Relation::Memory(ds.table.RecordSize());
  ASSERT_TRUE(ds.table.WriteTo(&rel).ok());
  for (const bool external : {false, true}) {
    CureOptions options;
    options.force_external = external;
    options.memory_budget_bytes = external ? 16384 : (256ull << 20);
    FactInput input;
    if (external) {
      input.relation = &rel;
    } else {
      input.table = &ds.table;
    }
    auto cube = BuildCure(ds.schema, input, options);
    ASSERT_TRUE(cube.ok()) << cube.status().ToString();
    auto engine = query::CureQueryEngine::Create(cube->get(), 1.0);
    ASSERT_TRUE(engine.ok());
    const schema::NodeIdCodec& codec = (*cube)->store().codec();
    for (NodeId id = 0; id < codec.num_nodes(); ++id) {
      ResultSink sink(true);
      ASSERT_TRUE((*engine)->QueryNode(id, &sink).ok());
      auto expected = query::ReferenceNodeResult(ds.schema, ds.table, id);
      ASSERT_TRUE(expected.ok());
      EXPECT_TRUE(query::SameResults(sink.TakeRows(), std::move(expected).value()))
          << p.label << " external=" << external << " node " << id;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Functions, AggFunctionTest,
    ::testing::Values(
        AggCase{{{AggFn::kSum, 0, "s"}}, "sum_only"},
        AggCase{{{AggFn::kCount, 0, "c"}}, "count_only"},
        AggCase{{{AggFn::kMin, 0, "mn"}}, "min_only"},
        AggCase{{{AggFn::kMax, 1, "mx"}}, "max_only"},
        AggCase{{{AggFn::kSum, 0, "s"}, {AggFn::kSum, 1, "s1"}}, "two_sums"},
        AggCase{{{AggFn::kMin, 0, "mn"}, {AggFn::kMax, 0, "mx"}}, "min_max"},
        AggCase{{{AggFn::kSum, 0, "s"},
                 {AggFn::kCount, 0, "c"},
                 {AggFn::kMin, 1, "mn"},
                 {AggFn::kMax, 1, "mx"}},
                "all_four"}),
    [](const ::testing::TestParamInfo<AggCase>& info) {
      return info.param.label;
    });

TEST(AggFnNameTest, Names) {
  EXPECT_STREQ(schema::AggFnName(AggFn::kSum), "SUM");
  EXPECT_STREQ(schema::AggFnName(AggFn::kCount), "COUNT");
  EXPECT_STREQ(schema::AggFnName(AggFn::kMin), "MIN");
  EXPECT_STREQ(schema::AggFnName(AggFn::kMax), "MAX");
}

}  // namespace
}  // namespace cure
