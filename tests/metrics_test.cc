#include "common/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <map>
#include <string>
#include <vector>

namespace cure {
namespace {

// ---- A strict parse-back of the Prometheus text exposition format. Every
// line the registry emits must round-trip through this, which is the
// contract a real scraper holds us to. ----

struct ParsedSample {
  std::string name;
  std::vector<std::pair<std::string, std::string>> labels;
  double value = 0;
};

bool ParseMetricName(const std::string& line, size_t* pos, std::string* name) {
  const size_t start = *pos;
  while (*pos < line.size()) {
    const char c = line[*pos];
    const bool alpha =
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':';
    const bool digit = c >= '0' && c <= '9';
    if (!alpha && !(digit && *pos > start)) break;
    ++*pos;
  }
  if (*pos == start) return false;
  *name = line.substr(start, *pos - start);
  return true;
}

// Parses one non-comment exposition line; returns false (with a gtest
// failure) on any deviation from the grammar.
bool ParseSampleLine(const std::string& line, ParsedSample* out) {
  size_t pos = 0;
  if (!ParseMetricName(line, &pos, &out->name)) {
    ADD_FAILURE() << "bad metric name in: " << line;
    return false;
  }
  if (pos < line.size() && line[pos] == '{') {
    ++pos;
    while (pos < line.size() && line[pos] != '}') {
      std::string label_name;
      if (!ParseMetricName(line, &pos, &label_name)) {
        ADD_FAILURE() << "bad label name in: " << line;
        return false;
      }
      if (pos + 1 >= line.size() || line[pos] != '=' || line[pos + 1] != '"') {
        ADD_FAILURE() << "label missing =\" in: " << line;
        return false;
      }
      pos += 2;
      std::string label_value;
      while (pos < line.size() && line[pos] != '"') {
        if (line[pos] == '\n') {
          ADD_FAILURE() << "raw newline in label value: " << line;
          return false;
        }
        if (line[pos] == '\\') {
          if (pos + 1 >= line.size()) {
            ADD_FAILURE() << "dangling escape in: " << line;
            return false;
          }
          const char esc = line[pos + 1];
          if (esc != '\\' && esc != '"' && esc != 'n') {
            ADD_FAILURE() << "unknown escape \\" << esc << " in: " << line;
            return false;
          }
          label_value += esc == 'n' ? '\n' : esc;
          pos += 2;
        } else {
          label_value += line[pos++];
        }
      }
      if (pos >= line.size()) {
        ADD_FAILURE() << "unterminated label value in: " << line;
        return false;
      }
      ++pos;  // closing quote
      out->labels.emplace_back(label_name, label_value);
      if (pos < line.size() && line[pos] == ',') ++pos;
    }
    if (pos >= line.size() || line[pos] != '}') {
      ADD_FAILURE() << "unterminated label set in: " << line;
      return false;
    }
    ++pos;
  }
  if (pos >= line.size() || line[pos] != ' ') {
    ADD_FAILURE() << "missing value separator in: " << line;
    return false;
  }
  ++pos;
  const std::string value_token = line.substr(pos);
  char* end = nullptr;
  out->value = std::strtod(value_token.c_str(), &end);
  if (end != value_token.c_str() + value_token.size()) {
    ADD_FAILURE() << "trailing junk after value in: " << line;
    return false;
  }
  if (!std::isfinite(out->value)) {
    ADD_FAILURE() << "non-finite sample value in: " << line;
    return false;
  }
  return true;
}

// Validates a whole exposition body line by line; returns the samples keyed
// by name (labels flattened back into the key) and the `# TYPE` map.
void ParseExposition(const std::string& text,
                     std::map<std::string, double>* samples,
                     std::map<std::string, std::string>* types) {
  size_t start = 0;
  int line_number = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    ASSERT_NE(end, std::string::npos)
        << "exposition must end every line with \\n";
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    ++line_number;
    ASSERT_FALSE(line.empty()) << "blank line " << line_number;
    if (line[0] == '#') {
      // Only `# TYPE <name> <type>` comments are emitted.
      size_t pos = 0;
      ASSERT_EQ(line.rfind("# TYPE ", 0), 0u) << line;
      pos = 7;
      std::string name;
      ASSERT_TRUE(ParseMetricName(line, &pos, &name)) << line;
      ASSERT_EQ(line[pos], ' ') << line;
      const std::string type = line.substr(pos + 1);
      ASSERT_TRUE(type == "counter" || type == "gauge" || type == "summary")
          << line;
      (*types)[name] = type;
      continue;
    }
    ParsedSample sample;
    ASSERT_TRUE(ParseSampleLine(line, &sample)) << line;
    std::string key = sample.name;
    for (const auto& [k, v] : sample.labels) key += "{" + k + "=" + v + "}";
    (*samples)[key] = sample.value;
  }
}

// ---- Formatting primitives ----

TEST(FormatMetricValueTest, IntegralValuesHaveNoDecimalPoint) {
  EXPECT_EQ(FormatMetricValue(0), "0");
  EXPECT_EQ(FormatMetricValue(1), "1");
  EXPECT_EQ(FormatMetricValue(-3), "-3");
  EXPECT_EQ(FormatMetricValue(123456789), "123456789");
  EXPECT_EQ(FormatMetricValue(2.5), "2.5");
  EXPECT_EQ(FormatMetricValue(0.001), "0.001");
  // Beyond exact-integer double range: falls back to %.6g.
  EXPECT_EQ(FormatMetricValue(1e20), "1e+20");
}

TEST(MetricNameTest, ValidAndInvalidNames) {
  EXPECT_TRUE(IsValidMetricName("cure_serve_queries_total"));
  EXPECT_TRUE(IsValidMetricName("a:b_c9"));
  EXPECT_TRUE(IsValidMetricName("_leading_underscore"));
  EXPECT_FALSE(IsValidMetricName(""));
  EXPECT_FALSE(IsValidMetricName("9leading_digit"));
  EXPECT_FALSE(IsValidMetricName("has-dash"));
  EXPECT_FALSE(IsValidMetricName("has space"));
  EXPECT_FALSE(IsValidMetricName("unicode\xc3\xa9"));
}

TEST(MetricNameTest, SanitizeMapsOntoGrammar) {
  EXPECT_EQ(SanitizeMetricName("queries.total"), "queries_total");
  EXPECT_EQ(SanitizeMetricName("9lives"), "_9lives");
  EXPECT_EQ(SanitizeMetricName(""), "_");
  EXPECT_EQ(SanitizeMetricName("already_fine"), "already_fine");
  EXPECT_TRUE(IsValidMetricName(SanitizeMetricName("weird name-with.stuff")));
}

TEST(EscapeLabelValueTest, EscapesBackslashQuoteNewline) {
  EXPECT_EQ(EscapeLabelValue("plain"), "plain");
  EXPECT_EQ(EscapeLabelValue("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(EscapeLabelValue("back\\slash"), "back\\\\slash");
  EXPECT_EQ(EscapeLabelValue("line\nbreak"), "line\\nbreak");
}

TEST(PrometheusSampleLineTest, RendersAndRejectsNonFinite) {
  EXPECT_EQ(PrometheusSampleLine("up", {}, 1), "up 1\n");
  EXPECT_EQ(PrometheusSampleLine("lat", {{"quantile", "0.5"}}, 2.5),
            "lat{quantile=\"0.5\"} 2.5\n");
  // NaN/Inf samples are suppressed entirely.
  EXPECT_EQ(
      PrometheusSampleLine("bad", {}, std::numeric_limits<double>::quiet_NaN()),
      "");
  EXPECT_EQ(
      PrometheusSampleLine("bad", {}, std::numeric_limits<double>::infinity()),
      "");
  // Hostile label values survive the round trip.
  ParsedSample sample;
  const std::string line = PrometheusSampleLine(
      "m", {{"path", "a\\b\"c\nd"}}, 7);
  ASSERT_TRUE(ParseSampleLine(line.substr(0, line.size() - 1), &sample));
  ASSERT_EQ(sample.labels.size(), 1u);
  EXPECT_EQ(sample.labels[0].second, "a\\b\"c\nd");
  EXPECT_EQ(sample.value, 7);
}

// ---- Registry exposition ----

TEST(MetricsRegistryTest, PrometheusTextParsesBackCompletely) {
  MetricsRegistry registry;
  registry.counter("queries_total")->Add(41);
  registry.counter("queries_total")->Inc();
  registry.counter("queries_errors")->Inc();
  registry.gauge("cache_bytes")->Set(1 << 20);
  registry.gauge("staleness_seconds")->Set(0.25);
  LogHistogram* latency = registry.histogram("latency");
  for (int i = 1; i <= 100; ++i) latency->Record(i * 10);

  const std::string text = registry.PrometheusText("cure_serve_");
  std::map<std::string, double> samples;
  std::map<std::string, std::string> types;
  ParseExposition(text, &samples, &types);

  EXPECT_EQ(types["cure_serve_queries_total"], "counter");
  EXPECT_EQ(types["cure_serve_queries_errors"], "counter");
  EXPECT_EQ(types["cure_serve_cache_bytes"], "gauge");
  EXPECT_EQ(types["cure_serve_staleness_seconds"], "gauge");
  EXPECT_EQ(types["cure_serve_latency_us"], "summary");

  EXPECT_EQ(samples["cure_serve_queries_total"], 42);
  EXPECT_EQ(samples["cure_serve_queries_errors"], 1);
  EXPECT_EQ(samples["cure_serve_cache_bytes"], 1 << 20);
  EXPECT_EQ(samples["cure_serve_staleness_seconds"], 0.25);
  EXPECT_EQ(samples["cure_serve_latency_us_count"], 100);
  EXPECT_GT(samples["cure_serve_latency_us_sum"], 0);
  // Quantile samples exist and are ordered.
  ASSERT_TRUE(samples.count("cure_serve_latency_us{quantile=0.5}"));
  ASSERT_TRUE(samples.count("cure_serve_latency_us{quantile=0.95}"));
  ASSERT_TRUE(samples.count("cure_serve_latency_us{quantile=0.99}"));
  EXPECT_LE(samples["cure_serve_latency_us{quantile=0.5}"],
            samples["cure_serve_latency_us{quantile=0.95}"]);
  EXPECT_LE(samples["cure_serve_latency_us{quantile=0.95}"],
            samples["cure_serve_latency_us{quantile=0.99}"]);
}

TEST(MetricsRegistryTest, NanGaugeIsSkippedNotEmitted) {
  MetricsRegistry registry;
  registry.gauge("healthy")->Set(1);
  registry.gauge("poisoned")->Set(std::numeric_limits<double>::quiet_NaN());
  const std::string text = registry.PrometheusText();
  std::map<std::string, double> samples;
  std::map<std::string, std::string> types;
  ParseExposition(text, &samples, &types);
  EXPECT_EQ(samples.count("healthy"), 1u);
  EXPECT_EQ(samples.count("poisoned"), 0u);
  EXPECT_EQ(types.count("poisoned"), 0u);  // No orphan TYPE comment either.
  EXPECT_EQ(text.find("nan"), std::string::npos);
}

TEST(MetricsRegistryTest, DottedNamesAreSanitizedInExposition) {
  MetricsRegistry registry;
  registry.counter("weird.name-with space")->Inc();
  const std::string text = registry.PrometheusText("p_");
  std::map<std::string, double> samples;
  std::map<std::string, std::string> types;
  ParseExposition(text, &samples, &types);
  EXPECT_EQ(samples["p_weird_name_with_space"], 1);
}

TEST(MetricsRegistryTest, TextSnapshotKeepsIntegerGaugeFormat) {
  MetricsRegistry registry;
  registry.counter("cache_hits")->Inc();
  registry.gauge("cache_entries")->Set(3);
  registry.gauge("hit_rate")->Set(0.75);
  const std::string text = registry.TextSnapshot();
  // Integral gauges keep the legacy `name <int>` STATS shape.
  EXPECT_NE(text.find("cache_hits 1\n"), std::string::npos) << text;
  EXPECT_NE(text.find("cache_entries 3\n"), std::string::npos) << text;
  EXPECT_NE(text.find("hit_rate 0.75\n"), std::string::npos) << text;
}

TEST(MetricsRegistryTest, HandlesReRegistrationAndGlobalSingleton) {
  MetricsRegistry registry;
  Counter* a = registry.counter("same");
  Counter* b = registry.counter("same");
  EXPECT_EQ(a, b);  // One counter per name; pointers stay stable.
  EXPECT_EQ(&GlobalMetrics(), &GlobalMetrics());
}

TEST(MetricsRegistryTest, EmptyHistogramStillParses) {
  MetricsRegistry registry;
  registry.histogram("never_recorded");
  const std::string text = registry.PrometheusText();
  std::map<std::string, double> samples;
  std::map<std::string, std::string> types;
  ParseExposition(text, &samples, &types);
  EXPECT_EQ(samples["never_recorded_us_count"], 0);
}

}  // namespace
}  // namespace cure
