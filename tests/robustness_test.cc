// Robustness tests: malformed inputs must fail cleanly (Status, never a
// crash), and randomized round-trips must be lossless.

#include <gtest/gtest.h>

#include "cube/cube_store.h"
#include "etl/csv.h"
#include "etl/dictionary.h"
#include "etl/schema_io.h"
#include "gen/random.h"
#include "storage/file_io.h"

namespace cure {
namespace {

TEST(CsvFuzzTest, RandomQuotedFieldsRoundTrip) {
  gen::Rng rng(2024);
  const std::string alphabet = "ab,\"\n x";
  for (int iter = 0; iter < 200; ++iter) {
    // Build a random row of random fields, emit as CSV, parse back.
    const int num_fields = 1 + static_cast<int>(rng.NextRange(5));
    std::vector<std::string> fields(num_fields);
    std::string line;
    for (int f = 0; f < num_fields; ++f) {
      const int len = static_cast<int>(rng.NextRange(8));
      for (int i = 0; i < len; ++i) {
        char c = alphabet[rng.NextRange(alphabet.size())];
        if (c == '\n') c = 'n';  // embedded newlines unsupported by design
        fields[f] += c;
      }
      // Quote every field (always legal) with "" escapes.
      std::string quoted = "\"";
      for (char c : fields[f]) {
        if (c == '"') quoted += "\"\"";
        else quoted += c;
      }
      quoted += "\"";
      if (f > 0) line += ",";
      line += quoted;
    }
    auto parsed = etl::ParseCsvLine(line);
    ASSERT_TRUE(parsed.ok()) << "iter " << iter << ": " << line;
    EXPECT_EQ(*parsed, fields) << "iter " << iter;
  }
}

TEST(CsvFuzzTest, RandomGarbageNeverCrashes) {
  gen::Rng rng(9);
  const std::string alphabet = "a,\"\r\n";
  for (int iter = 0; iter < 500; ++iter) {
    std::string doc;
    const int len = static_cast<int>(rng.NextRange(64));
    for (int i = 0; i < len; ++i) doc += alphabet[rng.NextRange(alphabet.size())];
    // Must either parse or return a Status — no crash, no UB.
    auto result = etl::ParseCsv(doc);
    (void)result;
  }
}

TEST(PackedCubeTest, TruncatedFileFailsCleanly) {
  // Write a valid cube, truncate it at various points, reopen.
  std::vector<schema::Dimension> dims;
  dims.push_back(schema::Dimension::Flat("A", 4));
  auto schema = schema::CubeSchema::Create(std::move(dims), 1,
                                           {{schema::AggFn::kSum, 0, "s"}});
  ASSERT_TRUE(schema.ok());
  cube::CubeStore store(&schema.value(), {});
  const int64_t aggrs[1] = {5};
  for (uint64_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(store.WriteNT(0, cube::MakeRowId(0, i), aggrs, nullptr).ok());
  }
  const std::string path = "/tmp/cure_robust_cube.bin";
  ASSERT_TRUE(store.PersistPacked(path).ok());

  storage::FileReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  const uint64_t full = reader.file_size();
  ASSERT_TRUE(reader.Close().ok());
  std::string content;
  {
    auto data = etl::ReadFileToString(path);
    ASSERT_TRUE(data.ok());
    content = std::move(data).value();
  }
  for (uint64_t cut : {uint64_t{0}, uint64_t{4}, full / 2}) {
    const std::string trunc_path = "/tmp/cure_robust_trunc.bin";
    ASSERT_TRUE(etl::WriteStringToFile(trunc_path, content.substr(0, cut)).ok());
    auto reopened = cube::CubeStore::OpenPacked(trunc_path, &schema.value());
    if (reopened.ok()) {
      // A cut inside the data area can open but must fail on read, not crash.
      const cube::CubeStore::NodeData* node = reopened->node(0);
      if (node != nullptr && node->has_nt) {
        uint8_t rec[64];
        (void)node->nt.Read(node->nt.num_rows() - 1, rec);
      }
    }
    ASSERT_TRUE(storage::RemoveFile(trunc_path).ok());
  }
  ASSERT_TRUE(storage::RemoveFile(path).ok());
}

TEST(PackedCubeTest, EmptyStoreRoundTrips) {
  std::vector<schema::Dimension> dims;
  dims.push_back(schema::Dimension::Flat("A", 4));
  auto schema = schema::CubeSchema::Create(std::move(dims), 1,
                                           {{schema::AggFn::kSum, 0, "s"}});
  ASSERT_TRUE(schema.ok());
  cube::CubeStore store(&schema.value(), {});
  const std::string path = "/tmp/cure_robust_empty.bin";
  ASSERT_TRUE(store.PersistPacked(path).ok());
  auto reopened = cube::CubeStore::OpenPacked(path, &schema.value());
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened->TotalBytes(), 0u);
  EXPECT_EQ(reopened->NumRelations(), 0u);
  ASSERT_TRUE(storage::RemoveFile(path).ok());
}

TEST(SchemaIoFuzzTest, MutatedDocumentsNeverCrash) {
  std::vector<schema::Dimension> dims;
  dims.push_back(schema::Dimension::Linear("A", {10, 2}));
  auto schema = schema::CubeSchema::Create(std::move(dims), 1,
                                           {{schema::AggFn::kSum, 0, "s"}});
  ASSERT_TRUE(schema.ok());
  const std::string good = etl::SerializeSchema(*schema);
  gen::Rng rng(5);
  for (int iter = 0; iter < 200; ++iter) {
    std::string bad = good;
    // Random single-character mutation.
    const size_t pos = rng.NextRange(bad.size());
    bad[pos] = static_cast<char>('0' + rng.NextRange(75));
    auto result = etl::DeserializeSchema(bad);
    if (result.ok()) {
      // A surviving mutation must still be a structurally valid schema.
      EXPECT_GE(result->num_dims(), 1);
    }
  }
}

TEST(DictionaryEdgeTest, EmptyAndUnterminated) {
  auto empty = etl::Dictionary::Deserialize("");
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->size(), 0u);
  EXPECT_FALSE(etl::Dictionary::Deserialize("no-newline").ok());
  EXPECT_FALSE(etl::Dictionary::Deserialize("dup\ndup\n").ok());
}

}  // namespace
}  // namespace cure
