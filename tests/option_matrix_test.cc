// Full option-matrix property test: every combination of signature-pool
// size, CURE_DR, CURE+ post-processing, and in-memory/external construction
// must produce a cube that answers every lattice node exactly.

#include <gtest/gtest.h>

#include <tuple>

#include "engine/cure.h"
#include "gen/datasets.h"
#include "gen/random.h"
#include "query/node_query.h"
#include "query/reference.h"

namespace cure {
namespace {

using engine::BuildCure;
using engine::CureOptions;
using engine::FactInput;
using query::ResultSink;
using schema::NodeId;

// (pool capacity, dims_in_nt, post_process, external)
using MatrixParam = std::tuple<size_t, bool, bool, bool>;

class OptionMatrixTest : public ::testing::TestWithParam<MatrixParam> {
 protected:
  static gen::Dataset MakeData() {
    gen::Dataset ds;
    std::vector<schema::Dimension> dims;
    dims.push_back(schema::Dimension::Linear("A", {18, 6, 2}));
    dims.push_back(schema::Dimension::Linear("B", {8, 2}));
    dims.push_back(schema::Dimension::Flat("C", 4));
    auto schema = schema::CubeSchema::Create(
        std::move(dims), 1,
        {{schema::AggFn::kSum, 0, "s"}, {schema::AggFn::kCount, 0, "c"}});
    EXPECT_TRUE(schema.ok());
    ds.schema = std::move(schema).value();
    ds.table = schema::FactTable(3, 1);
    gen::Rng rng(4242);
    for (int i = 0; i < 700; ++i) {
      const uint32_t row[3] = {static_cast<uint32_t>(rng.NextRange(18)),
                               static_cast<uint32_t>(rng.NextRange(8)),
                               static_cast<uint32_t>(rng.NextRange(4))};
      const int64_t m = static_cast<int64_t>(rng.NextRange(20));
      ds.table.AppendRow(row, &m);
    }
    return ds;
  }
};

TEST_P(OptionMatrixTest, EveryNodeMatchesReference) {
  const auto [pool, dr, plus, external] = GetParam();
  gen::Dataset ds = MakeData();
  storage::Relation rel = storage::Relation::Memory(ds.table.RecordSize());
  ASSERT_TRUE(ds.table.WriteTo(&rel).ok());

  CureOptions options;
  options.signature_pool_capacity = pool;
  options.dims_in_nt = dr;
  options.force_external = external;
  options.memory_budget_bytes = external ? 16384 : (256ull << 20);
  FactInput input;
  if (external) {
    input.relation = &rel;
  } else {
    input.table = &ds.table;
  }
  auto cube = BuildCure(ds.schema, input, options);
  ASSERT_TRUE(cube.ok()) << cube.status().ToString();
  if (plus) {
    ASSERT_TRUE(engine::CurePostProcess(cube->get()).ok());
  }
  auto engine = query::CureQueryEngine::Create(cube->get(), 1.0);
  ASSERT_TRUE(engine.ok());
  const schema::NodeIdCodec& codec = (*cube)->store().codec();
  for (NodeId id = 0; id < codec.num_nodes(); ++id) {
    ResultSink sink(true);
    ASSERT_TRUE((*engine)->QueryNode(id, &sink).ok());
    auto expected = query::ReferenceNodeResult(ds.schema, ds.table, id);
    ASSERT_TRUE(expected.ok());
    ASSERT_TRUE(query::SameResults(sink.TakeRows(), std::move(expected).value()))
        << "node " << id;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, OptionMatrixTest,
    ::testing::Combine(::testing::Values(size_t{1}, size_t{64}, size_t{1} << 20),
                       ::testing::Bool(), ::testing::Bool(), ::testing::Bool()),
    [](const ::testing::TestParamInfo<MatrixParam>& info) {
      std::string name = "pool" + std::to_string(std::get<0>(info.param));
      name += std::get<1>(info.param) ? "_dr" : "_nodr";
      name += std::get<2>(info.param) ? "_plus" : "_plain";
      name += std::get<3>(info.param) ? "_external" : "_memory";
      return name;
    });

}  // namespace
}  // namespace cure
