#include "common/status.h"

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/env.h"

namespace cure {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::IoError("disk on fire");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_EQ(s.message(), "disk on fire");
  EXPECT_EQ(s.ToString(), "IOError: disk on fire");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::ResourceExhausted("x").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::DeadlineExceeded("x").ToString(), "DeadlineExceeded: x");
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::FailedPrecondition("x").ToString(),
            "FailedPrecondition: x");
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
}

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}

Status UseParse(int v, int* out) {
  CURE_ASSIGN_OR_RETURN(*out, ParsePositive(v));
  return Status::OK();
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = ParsePositive(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 7);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = ParsePositive(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  int out = 0;
  EXPECT_TRUE(UseParse(5, &out).ok());
  EXPECT_EQ(out, 5);
  EXPECT_FALSE(UseParse(-5, &out).ok());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(3);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 3);
}

TEST(BytesTest, FormatsUnits) {
  EXPECT_EQ(FormatBytes(10), "10 B");
  EXPECT_EQ(FormatBytes(1536), "1.50 KB");
  EXPECT_EQ(FormatBytes(3ull << 20), "3.00 MB");
  EXPECT_EQ(FormatBytes(5ull << 30), "5.00 GB");
}

TEST(EnvTest, DefaultsWhenUnset) {
  EXPECT_EQ(EnvInt64("CURE_TEST_UNSET_VAR", 42), 42);
  EXPECT_DOUBLE_EQ(EnvDouble("CURE_TEST_UNSET_VAR", 1.5), 1.5);
  EXPECT_EQ(EnvString("CURE_TEST_UNSET_VAR", "d"), "d");
}

TEST(EnvTest, ParsesValues) {
  setenv("CURE_TEST_SET_VAR", "123", 1);
  EXPECT_EQ(EnvInt64("CURE_TEST_SET_VAR", 0), 123);
  setenv("CURE_TEST_SET_VAR", "2.25", 1);
  EXPECT_DOUBLE_EQ(EnvDouble("CURE_TEST_SET_VAR", 0), 2.25);
  unsetenv("CURE_TEST_SET_VAR");
}

}  // namespace
}  // namespace cure
