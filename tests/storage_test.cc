#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <numeric>
#include <random>

#include "storage/bitmap.h"
#include "storage/buffer_cache.h"
#include "storage/external_sort.h"
#include "storage/file_io.h"
#include "storage/relation.h"
#include "storage/row_block.h"

namespace cure {
namespace storage {
namespace {

std::string TempPath(const std::string& name) {
  return std::string("/tmp/cure_storage_test_") + name;
}

TEST(FileIoTest, WriteThenReadBack) {
  const std::string path = TempPath("rw.bin");
  FileWriter writer;
  ASSERT_TRUE(writer.Open(path, /*buffer_bytes=*/16).ok());
  const char data[] = "hello cure storage layer";
  ASSERT_TRUE(writer.Append(data, sizeof(data)).ok());
  ASSERT_TRUE(writer.Close().ok());

  FileReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  EXPECT_EQ(reader.file_size(), sizeof(data));
  char buf[sizeof(data)];
  ASSERT_TRUE(reader.ReadAt(0, buf, sizeof(data)).ok());
  EXPECT_EQ(std::memcmp(buf, data, sizeof(data)), 0);
  char mid[5];
  ASSERT_TRUE(reader.ReadAt(6, mid, 4).ok());
  EXPECT_EQ(std::string(mid, 4), "cure");
  ASSERT_TRUE(RemoveFile(path).ok());
}

TEST(FileIoTest, ReadPastEndFails) {
  const std::string path = TempPath("short.bin");
  FileWriter writer;
  ASSERT_TRUE(writer.Open(path).ok());
  ASSERT_TRUE(writer.Append("abc", 3).ok());
  ASSERT_TRUE(writer.Close().ok());
  FileReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  char buf[8];
  EXPECT_FALSE(reader.ReadAt(0, buf, 8).ok());
  ASSERT_TRUE(RemoveFile(path).ok());
}

TEST(FileIoTest, OpenMissingFileFails) {
  FileReader reader;
  EXPECT_FALSE(reader.Open("/tmp/cure_definitely_missing_file.bin").ok());
}

struct Rec {
  uint64_t key;
  uint32_t payload;
  uint32_t pad = 0;
};

TEST(RelationTest, MemoryAppendReadScan) {
  Relation rel = Relation::Memory(sizeof(Rec));
  for (uint64_t i = 0; i < 100; ++i) {
    Rec r{i * 3, static_cast<uint32_t>(i), 0};
    ASSERT_TRUE(rel.Append(&r).ok());
  }
  EXPECT_EQ(rel.num_rows(), 100u);
  EXPECT_EQ(rel.bytes(), 100 * sizeof(Rec));
  Rec out;
  ASSERT_TRUE(rel.Read(42, &out).ok());
  EXPECT_EQ(out.key, 42u * 3);
  EXPECT_FALSE(rel.Read(100, &out).ok());

  Relation::Scanner scan(rel);
  uint64_t i = 0;
  while (const uint8_t* rec = scan.Next()) {
    Rec r;
    std::memcpy(&r, rec, sizeof(Rec));
    EXPECT_EQ(r.key, i * 3);
    EXPECT_EQ(scan.row(), i);
    ++i;
  }
  EXPECT_EQ(i, 100u);
}

TEST(RelationTest, ScannerRowBeforeFirstNext) {
  // Regression: row() used to compute row_ - 1 before the first Next() and
  // underflow to UINT64_MAX.
  Relation rel = Relation::Memory(sizeof(Rec));
  Rec r{1, 2, 0};
  ASSERT_TRUE(rel.Append(&r).ok());
  Relation::Scanner scan(rel);
  EXPECT_EQ(scan.row(), 0u);
  ASSERT_NE(scan.Next(), nullptr);
  EXPECT_EQ(scan.row(), 0u);
  EXPECT_EQ(scan.Next(), nullptr);
}

TEST(RowBlockTest, MemoryBlockScannerIsZeroCopy) {
  Relation rel = Relation::Memory(sizeof(Rec));
  for (uint64_t i = 0; i < 100; ++i) {
    Rec r{i * 3, static_cast<uint32_t>(i), 0};
    ASSERT_TRUE(rel.Append(&r).ok());
  }
  Relation::BlockScanner scan(rel, /*block_rows=*/32);
  RowBlock block;
  uint64_t row = 0;
  std::vector<size_t> sizes;
  while (scan.Next(&block)) {
    EXPECT_EQ(block.first_row, row);
    EXPECT_EQ(block.record_size, sizeof(Rec));
    sizes.push_back(block.rows);
    for (size_t i = 0; i < block.rows; ++i) {
      Rec r;
      std::memcpy(&r, block.record(i), sizeof(Rec));
      EXPECT_EQ(r.key, (row + i) * 3);
    }
    row += block.rows;
  }
  ASSERT_TRUE(scan.status().ok());
  EXPECT_EQ(row, 100u);
  EXPECT_EQ(sizes, (std::vector<size_t>{32, 32, 32, 4}));
}

TEST(RowBlockTest, FileBlockScannerMatchesScalarScan) {
  const std::string path = TempPath("blocks.bin");
  Result<Relation> rel = Relation::CreateFile(path, sizeof(Rec));
  ASSERT_TRUE(rel.ok());
  const uint64_t n = 10000;
  for (uint64_t i = 0; i < n; ++i) {
    Rec r{i * 7 + 1, static_cast<uint32_t>(i % 13), 0};
    ASSERT_TRUE(rel->Append(&r).ok());
  }
  ASSERT_TRUE(rel->Seal().ok());

  // Odd block size: exercises partial tail blocks.
  Relation::BlockScanner scan(rel.value(), /*block_rows=*/257);
  RowBlock block;
  uint64_t row = 0;
  while (scan.Next(&block)) {
    EXPECT_EQ(block.first_row, row);
    for (size_t i = 0; i < block.rows; ++i) {
      Rec r;
      std::memcpy(&r, block.record(i), sizeof(Rec));
      ASSERT_EQ(r.key, (row + i) * 7 + 1);
    }
    row += block.rows;
  }
  ASSERT_TRUE(scan.status().ok());
  EXPECT_EQ(row, n);
  ASSERT_TRUE(RemoveFile(path).ok());
}

TEST(RowBlockTest, BlockScannerRejectsUnsealedFile) {
  const std::string path = TempPath("unsealed.bin");
  Result<Relation> rel = Relation::CreateFile(path, sizeof(Rec));
  ASSERT_TRUE(rel.ok());
  Rec r{1, 1, 0};
  ASSERT_TRUE(rel->Append(&r).ok());
  Relation::BlockScanner scan(rel.value(), 8);
  RowBlock block;
  EXPECT_FALSE(scan.Next(&block));
  EXPECT_FALSE(scan.status().ok());
  ASSERT_TRUE(rel->Seal().ok());
  ASSERT_TRUE(RemoveFile(path).ok());
}

TEST(RowBlockTest, ColumnViewGathersContiguousSlices) {
  Relation rel = Relation::Memory(sizeof(Rec));
  for (uint64_t i = 0; i < 50; ++i) {
    Rec r{i + 1000, static_cast<uint32_t>(i * 5), 0};
    ASSERT_TRUE(rel.Append(&r).ok());
  }
  Relation::BlockScanner scan(rel, /*block_rows=*/16);
  RowBlock block;
  ColumnView view;
  uint64_t row = 0;
  while (scan.Next(&block)) {
    const uint64_t* keys = view.GatherU64(block, offsetof(Rec, key));
    const uint32_t* payloads = view.GatherU32(block, offsetof(Rec, payload));
    for (size_t i = 0; i < block.rows; ++i) {
      EXPECT_EQ(keys[i], row + i + 1000);
      EXPECT_EQ(payloads[i], (row + i) * 5);
    }
    row += block.rows;
  }
  ASSERT_TRUE(scan.status().ok());
  EXPECT_EQ(row, 50u);
}

TEST(RowBlockTest, ZeroBlockRowsClampsToOne) {
  Relation rel = Relation::Memory(sizeof(Rec));
  for (uint64_t i = 0; i < 5; ++i) {
    Rec r{i, 0, 0};
    ASSERT_TRUE(rel.Append(&r).ok());
  }
  Relation::BlockScanner scan(rel, 0);
  RowBlock block;
  uint64_t blocks = 0;
  while (scan.Next(&block)) {
    EXPECT_EQ(block.rows, 1u);
    ++blocks;
  }
  EXPECT_EQ(blocks, 5u);
}

TEST(RelationTest, FileBackedAppendSealReadScan) {
  const std::string path = TempPath("rel.bin");
  Result<Relation> rel = Relation::CreateFile(path, sizeof(Rec));
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  for (uint64_t i = 0; i < 10000; ++i) {
    Rec r{i, static_cast<uint32_t>(i % 7), 0};
    ASSERT_TRUE(rel->Append(&r).ok());
  }
  ASSERT_TRUE(rel->Seal().ok());
  EXPECT_EQ(rel->num_rows(), 10000u);
  Rec out;
  ASSERT_TRUE(rel->Read(9999, &out).ok());
  EXPECT_EQ(out.key, 9999u);

  Relation::Scanner scan(rel.value(), /*buffer_records=*/64);
  uint64_t i = 0;
  while (const uint8_t* rec = scan.Next()) {
    Rec r;
    std::memcpy(&r, rec, sizeof(Rec));
    ASSERT_EQ(r.key, i);
    ++i;
  }
  EXPECT_EQ(i, 10000u);
  ASSERT_TRUE(RemoveFile(path).ok());
}

TEST(RelationTest, ReopenExistingFile) {
  const std::string path = TempPath("reopen.bin");
  {
    Result<Relation> rel = Relation::CreateFile(path, sizeof(Rec));
    ASSERT_TRUE(rel.ok());
    Rec r{77, 1, 0};
    ASSERT_TRUE(rel->Append(&r).ok());
    ASSERT_TRUE(rel->Seal().ok());
  }
  Result<Relation> rel = Relation::OpenFile(path, sizeof(Rec));
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->num_rows(), 1u);
  Rec out;
  ASSERT_TRUE(rel->Read(0, &out).ok());
  EXPECT_EQ(out.key, 77u);
  ASSERT_TRUE(RemoveFile(path).ok());
}

TEST(RelationTest, OpenFileSizeMismatchFails) {
  const std::string path = TempPath("mismatch.bin");
  FileWriter w;
  ASSERT_TRUE(w.Open(path).ok());
  ASSERT_TRUE(w.Append("12345", 5).ok());
  ASSERT_TRUE(w.Close().ok());
  EXPECT_FALSE(Relation::OpenFile(path, 4).ok());
  ASSERT_TRUE(RemoveFile(path).ok());
}

TEST(BitmapTest, SetTestCount) {
  Bitmap bm(1000);
  EXPECT_EQ(bm.Count(), 0u);
  bm.Set(0);
  bm.Set(63);
  bm.Set(64);
  bm.Set(999);
  EXPECT_TRUE(bm.Test(0));
  EXPECT_TRUE(bm.Test(63));
  EXPECT_TRUE(bm.Test(64));
  EXPECT_TRUE(bm.Test(999));
  EXPECT_FALSE(bm.Test(1));
  EXPECT_FALSE(bm.Test(998));
  EXPECT_EQ(bm.Count(), 4u);
  EXPECT_EQ(bm.SerializedBytes(), ((1000 + 63) / 64) * 8u);
}

TEST(BitmapTest, ForEachIteratesInOrder) {
  Bitmap bm(500);
  std::vector<uint64_t> expected = {3, 64, 65, 127, 128, 400, 499};
  for (uint64_t v : expected) bm.Set(v);
  std::vector<uint64_t> got;
  bm.ForEach([&](uint64_t v) { got.push_back(v); });
  EXPECT_EQ(got, expected);
}

RecordLess KeyLess() {
  return [](const uint8_t* a, const uint8_t* b) {
    uint64_t ka, kb;
    std::memcpy(&ka, a, 8);
    std::memcpy(&kb, b, 8);
    return ka < kb;
  };
}

TEST(ExternalSortTest, InMemoryFastPath) {
  Relation in = Relation::Memory(sizeof(Rec));
  std::mt19937_64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    Rec r{rng() % 10000, static_cast<uint32_t>(i), 0};
    ASSERT_TRUE(in.Append(&r).ok());
  }
  Relation out = Relation::Memory(sizeof(Rec));
  ExternalSortOptions opts;
  ASSERT_TRUE(ExternalSort(in, KeyLess(), opts, &out).ok());
  ASSERT_EQ(out.num_rows(), 1000u);
  uint64_t prev = 0;
  Relation::Scanner scan(out);
  while (const uint8_t* rec = scan.Next()) {
    uint64_t k;
    std::memcpy(&k, rec, 8);
    EXPECT_GE(k, prev);
    prev = k;
  }
}

TEST(ExternalSortTest, MultiRunMerge) {
  const std::string path = TempPath("sortin.bin");
  Result<Relation> in = Relation::CreateFile(path, sizeof(Rec));
  ASSERT_TRUE(in.ok());
  std::mt19937_64 rng(11);
  const uint64_t n = 20000;
  for (uint64_t i = 0; i < n; ++i) {
    Rec r{rng() % 1000000, static_cast<uint32_t>(i), 0};
    ASSERT_TRUE(in->Append(&r).ok());
  }
  ASSERT_TRUE(in->Seal().ok());

  Relation out = Relation::Memory(sizeof(Rec));
  ExternalSortOptions opts;
  opts.memory_budget_bytes = 32 * sizeof(Rec);  // Force many runs.
  opts.temp_dir = "/tmp";
  ASSERT_TRUE(ExternalSort(in.value(), KeyLess(), opts, &out).ok());
  ASSERT_EQ(out.num_rows(), n);
  uint64_t prev = 0;
  Relation::Scanner scan(out);
  uint64_t count = 0;
  while (const uint8_t* rec = scan.Next()) {
    uint64_t k;
    std::memcpy(&k, rec, 8);
    ASSERT_GE(k, prev);
    prev = k;
    ++count;
  }
  EXPECT_EQ(count, n);
  ASSERT_TRUE(RemoveFile(path).ok());
}

TEST(BufferCacheTest, PinnedPrefixServesHits) {
  const std::string path = TempPath("cache.bin");
  Result<Relation> rel = Relation::CreateFile(path, sizeof(Rec));
  ASSERT_TRUE(rel.ok());
  for (uint64_t i = 0; i < 1000; ++i) {
    Rec r{i, 0, 0};
    ASSERT_TRUE(rel->Append(&r).ok());
  }
  ASSERT_TRUE(rel->Seal().ok());

  BufferCache cache;
  ASSERT_TRUE(cache.Init(&rel.value(), 0.5).ok());
  EXPECT_EQ(cache.cached_rows(), 500u);
  Rec out;
  ASSERT_TRUE(cache.Read(10, &out).ok());
  EXPECT_EQ(out.key, 10u);
  ASSERT_TRUE(cache.Read(900, &out).ok());
  EXPECT_EQ(out.key, 900u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  ASSERT_TRUE(RemoveFile(path).ok());
}

TEST(BufferCacheTest, MemoryRelationAlwaysHits) {
  Relation rel = Relation::Memory(sizeof(Rec));
  Rec r{5, 0, 0};
  ASSERT_TRUE(rel.Append(&r).ok());
  BufferCache cache;
  ASSERT_TRUE(cache.Init(&rel, 0.0).ok());
  Rec out;
  ASSERT_TRUE(cache.Read(0, &out).ok());
  EXPECT_EQ(out.key, 5u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 0u);
}

TEST(DirHelpersTest, EnsureAndRemoveTree) {
  const std::string dir = TempPath("tree/sub/dir");
  ASSERT_TRUE(EnsureDir(dir).ok());
  EXPECT_TRUE(std::filesystem::exists(dir));
  ASSERT_TRUE(RemoveDirTree(TempPath("tree")).ok());
  EXPECT_FALSE(std::filesystem::exists(TempPath("tree")));
}

}  // namespace
}  // namespace storage
}  // namespace cure
