#include <gtest/gtest.h>

#include "engine/bubst.h"
#include "engine/buc.h"
#include "engine/cure.h"
#include "gen/datasets.h"
#include "gen/random.h"
#include "query/node_query.h"
#include "query/reference.h"

namespace cure {
namespace {

using engine::BuildCure;
using engine::CureOptions;
using engine::FactInput;
using query::ResultSink;
using schema::AggFn;
using schema::Dimension;
using schema::NodeId;

gen::Dataset MakeDataset(std::vector<Dimension> dims,
                         std::vector<std::vector<uint32_t>> rows,
                         std::vector<int64_t> measures) {
  gen::Dataset ds;
  auto schema = schema::CubeSchema::Create(
      std::move(dims), 1, {{AggFn::kSum, 0, "s"}, {AggFn::kCount, 0, "c"}});
  EXPECT_TRUE(schema.ok());
  ds.schema = std::move(schema).value();
  ds.table = schema::FactTable(ds.schema.num_dims(), 1);
  for (size_t i = 0; i < rows.size(); ++i) {
    ds.table.AppendRow(rows[i].data(), &measures[i]);
  }
  return ds;
}

void ExpectAllNodesMatch(const engine::CureCube& cube, const gen::Dataset& ds) {
  auto engine = query::CureQueryEngine::Create(&cube, 1.0);
  ASSERT_TRUE(engine.ok());
  const schema::NodeIdCodec& codec = cube.store().codec();
  for (NodeId id = 0; id < codec.num_nodes(); ++id) {
    ResultSink sink(true);
    ASSERT_TRUE((*engine)->QueryNode(id, &sink).ok());
    auto expected = query::ReferenceNodeResult(ds.schema, ds.table, id);
    ASSERT_TRUE(expected.ok());
    EXPECT_TRUE(query::SameResults(sink.TakeRows(), std::move(expected).value()))
        << "node " << id;
  }
}

TEST(EdgeCaseTest, EmptyFactTable) {
  gen::Dataset ds = MakeDataset({Dimension::Flat("A", 3), Dimension::Flat("B", 3)},
                                {}, {});
  CureOptions options;
  FactInput input{.table = &ds.table};
  auto cube = BuildCure(ds.schema, input, options);
  ASSERT_TRUE(cube.ok());
  EXPECT_EQ((*cube)->stats().tt + (*cube)->stats().nt + (*cube)->stats().cat, 0u);
  ExpectAllNodesMatch(**cube, ds);
}

TEST(EdgeCaseTest, SingleRowFactTable) {
  gen::Dataset ds = MakeDataset({Dimension::Linear("A", {4, 2}),
                                 Dimension::Flat("B", 3)},
                                {{2, 1}}, {42});
  CureOptions options;
  FactInput input{.table = &ds.table};
  auto cube = BuildCure(ds.schema, input, options);
  ASSERT_TRUE(cube.ok());
  // The single tuple is trivial at the ALL node; one TT covers the entire
  // lattice.
  EXPECT_EQ((*cube)->stats().tt, 1u);
  EXPECT_EQ((*cube)->stats().nt, 0u);
  EXPECT_EQ((*cube)->stats().cat, 0u);
  ExpectAllNodesMatch(**cube, ds);
}

TEST(EdgeCaseTest, AllRowsIdentical) {
  std::vector<std::vector<uint32_t>> rows(50, {1, 2});
  std::vector<int64_t> ms(50, 7);
  gen::Dataset ds = MakeDataset({Dimension::Flat("A", 3), Dimension::Flat("B", 3)},
                                std::move(rows), std::move(ms));
  CureOptions options;
  FactInput input{.table = &ds.table};
  auto cube = BuildCure(ds.schema, input, options);
  ASSERT_TRUE(cube.ok());
  EXPECT_EQ((*cube)->stats().tt, 0u);  // Nothing is trivial.
  // Every node has exactly one group, all with identical aggregates —
  // common-source CATs through and through.
  ExpectAllNodesMatch(**cube, ds);
}

TEST(EdgeCaseTest, SingleDimension) {
  gen::Dataset ds = MakeDataset({Dimension::Linear("A", {10, 5, 2})},
                                {{0}, {1}, {5}, {5}, {9}}, {1, 2, 3, 4, 5});
  CureOptions options;
  FactInput input{.table = &ds.table};
  auto cube = BuildCure(ds.schema, input, options);
  ASSERT_TRUE(cube.ok());
  ExpectAllNodesMatch(**cube, ds);
}

TEST(EdgeCaseTest, CardinalityOneDimensions) {
  gen::Dataset ds = MakeDataset({Dimension::Flat("A", 1), Dimension::Flat("B", 4)},
                                {{0, 0}, {0, 1}, {0, 1}}, {5, 6, 7});
  CureOptions options;
  FactInput input{.table = &ds.table};
  auto cube = BuildCure(ds.schema, input, options);
  ASSERT_TRUE(cube.ok());
  ExpectAllNodesMatch(**cube, ds);
}

TEST(EdgeCaseTest, NegativeMeasures) {
  gen::Dataset ds = MakeDataset({Dimension::Flat("A", 4), Dimension::Flat("B", 4)},
                                {{0, 0}, {0, 0}, {1, 2}, {3, 3}},
                                {-10, -20, -5, 0});
  CureOptions options;
  FactInput input{.table = &ds.table};
  auto cube = BuildCure(ds.schema, input, options);
  ASSERT_TRUE(cube.ok());
  ExpectAllNodesMatch(**cube, ds);
}

TEST(EdgeCaseTest, MinSupportLargerThanTable) {
  gen::Dataset ds = MakeDataset({Dimension::Flat("A", 4)}, {{0}, {1}}, {1, 2});
  CureOptions options;
  options.min_support = 100;
  FactInput input{.table = &ds.table};
  auto cube = BuildCure(ds.schema, input, options);
  ASSERT_TRUE(cube.ok());
  EXPECT_EQ((*cube)->stats().tt + (*cube)->stats().nt + (*cube)->stats().cat, 0u);
}

TEST(EdgeCaseTest, MissingInputRejected) {
  gen::Dataset ds = MakeDataset({Dimension::Flat("A", 2)}, {{0}}, {1});
  CureOptions options;
  EXPECT_FALSE(BuildCure(ds.schema, FactInput{}, options).ok());
}

TEST(EdgeCaseTest, ExternalWithoutRelationRejected) {
  gen::Dataset ds = MakeDataset({Dimension::Flat("A", 2)}, {{0}}, {1});
  CureOptions options;
  options.force_external = true;
  FactInput input{.table = &ds.table};
  EXPECT_FALSE(BuildCure(ds.schema, input, options).ok());
}

TEST(EdgeCaseTest, ExternalShortPlanRejected) {
  gen::Dataset ds = MakeDataset({Dimension::Flat("A", 2)}, {{0}}, {1});
  storage::Relation rel = storage::Relation::Memory(ds.table.RecordSize());
  ASSERT_TRUE(ds.table.WriteTo(&rel).ok());
  CureOptions options;
  options.force_external = true;
  options.plan_style = plan::ExecutionPlan::Style::kShort;
  FactInput input{.relation = &rel};
  EXPECT_FALSE(BuildCure(ds.schema, input, options).ok());
}

TEST(EdgeCaseTest, BucAndBubstOnTinyTables) {
  gen::Dataset ds = MakeDataset({Dimension::Flat("A", 3), Dimension::Flat("B", 3)},
                                {{1, 1}}, {9});
  auto buc = engine::BuildBuc(ds.schema, ds.table, {});
  auto bubst = engine::BuildBubst(ds.schema, ds.table, {});
  ASSERT_TRUE(buc.ok());
  ASSERT_TRUE(bubst.ok());
  // BUC writes 4 node tuples (2^2); BU-BST prunes to a single BST at ALL.
  EXPECT_EQ((*buc)->stats().plain, 4u);
  EXPECT_EQ((*bubst)->stats().tt, 1u);
  EXPECT_EQ((*bubst)->stats().plain, 0u);
}

TEST(EdgeCaseTest, QueryEmptyNodeOfSparseCube) {
  // Iceberg cube with most groups pruned: querying an empty node succeeds
  // with zero tuples.
  gen::Dataset ds = MakeDataset({Dimension::Flat("A", 8), Dimension::Flat("B", 8)},
                                {{0, 0}, {1, 1}, {2, 2}}, {1, 2, 3});
  CureOptions options;
  options.min_support = 2;
  FactInput input{.table = &ds.table};
  auto cube = BuildCure(ds.schema, input, options);
  ASSERT_TRUE(cube.ok());
  auto engine = query::CureQueryEngine::Create(cube->get(), 1.0);
  ASSERT_TRUE(engine.ok());
  ResultSink sink;
  ASSERT_TRUE((*engine)->QueryNode(0, &sink).ok());
  EXPECT_EQ(sink.count(), 0u);
}

TEST(EdgeCaseTest, DuplicateHeavyWithTinyPoolAndDr) {
  // Duplicates + tiny pool + DR: stresses flush classification with carried
  // dims.
  std::vector<std::vector<uint32_t>> rows;
  std::vector<int64_t> ms;
  gen::Rng rng(81);
  for (int i = 0; i < 300; ++i) {
    rows.push_back({static_cast<uint32_t>(rng.NextRange(3)),
                    static_cast<uint32_t>(rng.NextRange(3))});
    ms.push_back(5);  // identical measures: CATs everywhere
  }
  gen::Dataset ds = MakeDataset({Dimension::Linear("A", {3, 2}),
                                 Dimension::Flat("B", 3)},
                                std::move(rows), std::move(ms));
  CureOptions options;
  options.signature_pool_capacity = 3;
  options.dims_in_nt = true;
  FactInput input{.table = &ds.table};
  auto cube = BuildCure(ds.schema, input, options);
  ASSERT_TRUE(cube.ok());
  ExpectAllNodesMatch(**cube, ds);
}

}  // namespace
}  // namespace cure
