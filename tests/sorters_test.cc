#include "engine/sorters.h"

#include <gtest/gtest.h>

#include <numeric>

#include "gen/random.h"
#include "gen/zipf.h"

namespace cure {
namespace engine {
namespace {

struct SortCase {
  size_t n;
  uint32_t cardinality;
  double zipf;
  SortPolicy policy;
  const char* label;
};

class SortSpanTest : public ::testing::TestWithParam<SortCase> {};

TEST_P(SortSpanTest, ProducesNonDecreasingKeysAndPermutation) {
  const SortCase& p = GetParam();
  gen::Rng rng(99);
  gen::ZipfSampler sampler(p.cardinality, p.zipf);
  std::vector<uint32_t> keys(p.n);
  for (size_t i = 0; i < p.n; ++i) keys[i] = sampler.Sample(&rng);
  std::vector<uint32_t> idx(p.n);
  std::iota(idx.begin(), idx.end(), 0);
  SortScratch scratch;
  SortSpan(
      idx.data(), p.n, p.cardinality, [&](uint32_t i) { return keys[i]; },
      p.policy, &scratch);
  // Non-decreasing keys.
  for (size_t i = 1; i < p.n; ++i) {
    ASSERT_LE(keys[idx[i - 1]], keys[idx[i]]) << "position " << i;
  }
  // Valid permutation.
  std::vector<bool> seen(p.n, false);
  for (uint32_t v : idx) {
    ASSERT_LT(v, p.n);
    ASSERT_FALSE(seen[v]);
    seen[v] = true;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SortSpanTest,
    ::testing::Values(
        SortCase{0, 16, 0.0, SortPolicy::kAuto, "empty"},
        SortCase{1, 16, 0.0, SortPolicy::kAuto, "single"},
        SortCase{1000, 4, 0.0, SortPolicy::kAuto, "auto_small_card"},
        SortCase{1000, 100000, 0.0, SortPolicy::kAuto, "auto_huge_card"},
        SortCase{5000, 64, 2.0, SortPolicy::kAuto, "auto_skewed"},
        SortCase{1000, 4, 0.0, SortPolicy::kCountingOnly, "counting_small"},
        SortCase{1000, 2048, 1.0, SortPolicy::kCountingOnly, "counting_wide"},
        SortCase{1000, 4, 0.0, SortPolicy::kComparisonOnly, "comparison_small"},
        SortCase{5000, 64, 2.0, SortPolicy::kComparisonOnly, "comparison_skewed"},
        SortCase{4096, 1, 0.0, SortPolicy::kAuto, "all_equal"},
        SortCase{333, 333, 0.0, SortPolicy::kAuto, "card_equals_n"}),
    [](const ::testing::TestParamInfo<SortCase>& info) {
      return info.param.label;
    });

TEST(SortSpanTest, PoliciesAgree) {
  gen::Rng rng(7);
  const size_t n = 2000;
  const uint32_t card = 50;
  std::vector<uint32_t> keys(n);
  for (size_t i = 0; i < n; ++i) keys[i] = static_cast<uint32_t>(rng.NextRange(card));
  SortScratch scratch;
  std::vector<std::vector<uint32_t>> sorted_keys;
  for (SortPolicy policy : {SortPolicy::kAuto, SortPolicy::kCountingOnly,
                            SortPolicy::kComparisonOnly}) {
    std::vector<uint32_t> idx(n);
    std::iota(idx.begin(), idx.end(), 0);
    SortSpan(
        idx.data(), n, card, [&](uint32_t i) { return keys[i]; }, policy,
        &scratch);
    std::vector<uint32_t> out(n);
    for (size_t i = 0; i < n; ++i) out[i] = keys[idx[i]];
    sorted_keys.push_back(std::move(out));
  }
  EXPECT_EQ(sorted_keys[0], sorted_keys[1]);
  EXPECT_EQ(sorted_keys[0], sorted_keys[2]);
}

TEST(SortSpanTest, CountingSortIsStable) {
  // Counting sort preserves the relative order of equal keys; the engine
  // does not rely on it, but stability makes runs deterministic.
  const size_t n = 100;
  std::vector<uint32_t> keys(n);
  for (size_t i = 0; i < n; ++i) keys[i] = static_cast<uint32_t>(i % 5);
  std::vector<uint32_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  SortScratch scratch;
  SortSpan(
      idx.data(), n, 5, [&](uint32_t i) { return keys[i]; },
      SortPolicy::kCountingOnly, &scratch);
  for (size_t i = 1; i < n; ++i) {
    if (keys[idx[i - 1]] == keys[idx[i]]) {
      EXPECT_LT(idx[i - 1], idx[i]);
    }
  }
}

TEST(SortSpanTest, SortsSubrangeOnly) {
  std::vector<uint32_t> keys = {9, 8, 7, 6, 5, 4, 3, 2, 1, 0};
  std::vector<uint32_t> idx(10);
  std::iota(idx.begin(), idx.end(), 0);
  SortScratch scratch;
  // Sort only positions [2, 7).
  SortSpan(
      idx.data() + 2, 5, 10, [&](uint32_t i) { return keys[i]; },
      SortPolicy::kAuto, &scratch);
  EXPECT_EQ(idx[0], 0u);
  EXPECT_EQ(idx[1], 1u);
  EXPECT_EQ(idx[9], 9u);
  for (size_t i = 3; i < 7; ++i) EXPECT_LE(keys[idx[i - 1]], keys[idx[i]]);
}

}  // namespace
}  // namespace engine
}  // namespace cure
