#include "engine/incremental.h"

#include <gtest/gtest.h>

#include "gen/datasets.h"
#include "gen/random.h"
#include "query/node_query.h"
#include "query/reference.h"

namespace cure {
namespace {

using engine::ApplyDelta;
using engine::BuildCure;
using engine::CureOptions;
using engine::FactInput;
using query::ResultSink;
using schema::AggFn;
using schema::Dimension;
using schema::NodeId;

schema::CubeSchema MakeSchema() {
  std::vector<Dimension> dims;
  dims.push_back(Dimension::Linear("A", {20, 5, 2}));
  dims.push_back(Dimension::Linear("B", {10, 2}));
  dims.push_back(Dimension::Flat("C", 4));
  auto schema = schema::CubeSchema::Create(
      std::move(dims), 1, {{AggFn::kSum, 0, "s"}, {AggFn::kCount, 0, "c"}});
  EXPECT_TRUE(schema.ok());
  return std::move(schema).value();
}

void AppendRandomRows(schema::FactTable* table, uint64_t count, uint64_t seed) {
  gen::Rng rng(seed);
  for (uint64_t i = 0; i < count; ++i) {
    const uint32_t row[3] = {static_cast<uint32_t>(rng.NextRange(20)),
                             static_cast<uint32_t>(rng.NextRange(10)),
                             static_cast<uint32_t>(rng.NextRange(4))};
    const int64_t m = static_cast<int64_t>(rng.NextRange(50));
    table->AppendRow(row, &m);
  }
}

void ExpectAllNodesMatch(const engine::CureCube& cube,
                         const schema::CubeSchema& schema,
                         const schema::FactTable& table) {
  auto engine = query::CureQueryEngine::Create(&cube, 1.0);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  const schema::NodeIdCodec& codec = cube.store().codec();
  for (NodeId id = 0; id < codec.num_nodes(); ++id) {
    ResultSink sink(true);
    ASSERT_TRUE((*engine)->QueryNode(id, &sink).ok());
    auto expected = query::ReferenceNodeResult(schema, table, id);
    ASSERT_TRUE(expected.ok());
    ASSERT_TRUE(query::SameResults(sink.TakeRows(), std::move(expected).value()))
        << "node " << codec.Name(id, schema) << " (" << id << ")";
  }
}

struct DeltaCase {
  uint64_t base_rows;
  uint64_t delta_rows;
  bool dr;
  bool post_process_first;
  const char* label;
};

class ApplyDeltaTest : public ::testing::TestWithParam<DeltaCase> {};

TEST_P(ApplyDeltaTest, UpdatedCubeMatchesFromScratchReference) {
  const DeltaCase& p = GetParam();
  schema::CubeSchema schema = MakeSchema();
  schema::FactTable table(3, 1);
  AppendRandomRows(&table, p.base_rows, 1000 + p.base_rows);

  CureOptions options;
  options.dims_in_nt = p.dr;
  FactInput input{.table = &table};
  auto cube = BuildCure(schema, input, options);
  ASSERT_TRUE(cube.ok()) << cube.status().ToString();
  if (p.post_process_first) {
    ASSERT_TRUE(engine::CurePostProcess(cube->get()).ok());
  }

  const uint64_t old_rows = table.num_rows();
  AppendRandomRows(&table, p.delta_rows, 2000 + p.delta_rows);
  auto stats = ApplyDelta(cube->get(), table, old_rows);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->delta_rows, p.delta_rows);
  ExpectAllNodesMatch(**cube, schema, table);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ApplyDeltaTest,
    ::testing::Values(DeltaCase{300, 30, false, false, "small_delta"},
                      DeltaCase{300, 300, false, false, "equal_delta"},
                      DeltaCase{50, 200, false, false, "delta_dominates"},
                      DeltaCase{300, 1, false, false, "single_row_delta"},
                      DeltaCase{300, 50, true, false, "dr_mode"},
                      DeltaCase{300, 50, false, true, "after_postprocess"},
                      DeltaCase{0, 100, false, false, "empty_base"}),
    [](const ::testing::TestParamInfo<DeltaCase>& info) {
      return info.param.label;
    });

TEST(ApplyDeltaTest, RepeatedDeltas) {
  schema::CubeSchema schema = MakeSchema();
  schema::FactTable table(3, 1);
  AppendRandomRows(&table, 200, 3000);
  CureOptions options;
  FactInput input{.table = &table};
  auto cube = BuildCure(schema, input, options);
  ASSERT_TRUE(cube.ok());
  for (int round = 0; round < 5; ++round) {
    const uint64_t old_rows = table.num_rows();
    AppendRandomRows(&table, 40, 4000 + round);
    auto stats = ApplyDelta(cube->get(), table, old_rows);
    ASSERT_TRUE(stats.ok()) << "round " << round << ": "
                            << stats.status().ToString();
  }
  ExpectAllNodesMatch(**cube, schema, table);
}

TEST(ApplyDeltaTest, StatsReportTupleTransitions) {
  schema::CubeSchema schema = MakeSchema();
  schema::FactTable table(3, 1);
  // A base where every row is unique in dimension A.
  for (uint32_t i = 0; i < 10; ++i) {
    const uint32_t row[3] = {i, i % 10, i % 4};
    const int64_t m = 5;
    table.AppendRow(row, &m);
  }
  CureOptions options;
  FactInput input{.table = &table};
  auto cube = BuildCure(schema, input, options);
  ASSERT_TRUE(cube.ok());
  const uint64_t tts_before = (*cube)->stats().tt;
  EXPECT_GT(tts_before, 0u);

  // Duplicate an existing row: its TT group becomes non-trivial.
  const uint64_t old_rows = table.num_rows();
  const uint32_t dup[3] = {3, 3, 3};
  const int64_t m = 7;
  table.AppendRow(dup, &m);
  auto stats = ApplyDelta(cube->get(), table, old_rows);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GT(stats->absorbed_tts, 0u);
  ExpectAllNodesMatch(**cube, schema, table);
}

TEST(ApplyDeltaTest, NoOpDelta) {
  schema::CubeSchema schema = MakeSchema();
  schema::FactTable table(3, 1);
  AppendRandomRows(&table, 100, 5000);
  CureOptions options;
  FactInput input{.table = &table};
  auto cube = BuildCure(schema, input, options);
  ASSERT_TRUE(cube.ok());
  auto stats = ApplyDelta(cube->get(), table, table.num_rows());
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->delta_rows, 0u);
}

// Each unsupported-cube path must fail with kFailedPrecondition and name
// the violated requirement: the serving layer's refresh arbitration keys
// its delta-vs-rebuild decision on exactly this code, and operators read
// the message as the fallback reason. One regression test per path.
TEST(ApplyDeltaTest, IcebergCubeIsAFailedPrecondition) {
  schema::CubeSchema schema = MakeSchema();
  schema::FactTable table(3, 1);
  AppendRandomRows(&table, 100, 6000);
  CureOptions options;
  options.min_support = 2;
  FactInput input{.table = &table};
  auto cube = BuildCure(schema, input, options);
  ASSERT_TRUE(cube.ok());
  const Status status =
      ApplyDelta(cube->get(), table, table.num_rows() - 1).status();
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition)
      << status.ToString();
  EXPECT_NE(status.message().find("iceberg"), std::string::npos)
      << status.ToString();
  EXPECT_NE(status.message().find("min_support"), std::string::npos);
}

TEST(ApplyDeltaTest, SpilledCubeIsAFailedPrecondition) {
  schema::CubeSchema schema = MakeSchema();
  schema::FactTable table(3, 1);
  AppendRandomRows(&table, 100, 6001);
  CureOptions options;
  FactInput input{.table = &table};
  auto cube = BuildCure(schema, input, options);
  ASSERT_TRUE(cube.ok());
  ASSERT_TRUE((*cube)->SpillStoreToDisk("/tmp/cure_incr_spill.bin").ok());
  const Status status =
      ApplyDelta(cube->get(), table, table.num_rows()).status();
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition)
      << status.ToString();
  EXPECT_NE(status.message().find("spilled"), std::string::npos)
      << status.ToString();
  ASSERT_TRUE(storage::RemoveFile("/tmp/cure_incr_spill.bin").ok());
}

TEST(ApplyDeltaTest, ExternallyBuiltCubeIsAFailedPrecondition) {
  schema::CubeSchema schema = MakeSchema();
  schema::FactTable table(3, 1);
  AppendRandomRows(&table, 200, 6002);
  storage::Relation rel = storage::Relation::Memory(table.RecordSize());
  ASSERT_TRUE(table.WriteTo(&rel).ok());
  CureOptions options;
  options.force_external = true;  // partitioned path: partition_level >= 0
  // Both forms: the external build reads the relation, while the cube still
  // records the table pointer, so ApplyDelta reaches the partition check.
  FactInput input{.table = &table, .relation = &rel};
  auto cube = BuildCure(schema, input, options);
  ASSERT_TRUE(cube.ok()) << cube.status().ToString();
  ASSERT_GE((*cube)->partition_level(), 0);
  const Status status =
      ApplyDelta(cube->get(), table, table.num_rows()).status();
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition)
      << status.ToString();
  EXPECT_NE(status.message().find("partition"), std::string::npos)
      << status.ToString();
}

TEST(ApplyDeltaTest, ShortPlanCubeIsAFailedPrecondition) {
  schema::CubeSchema schema = MakeSchema();
  schema::FactTable table(3, 1);
  AppendRandomRows(&table, 100, 6003);
  CureOptions options;
  options.plan_style = plan::ExecutionPlan::Style::kShort;
  FactInput input{.table = &table};
  auto cube = BuildCure(schema, input, options);
  ASSERT_TRUE(cube.ok()) << cube.status().ToString();
  const Status status =
      ApplyDelta(cube->get(), table, table.num_rows()).status();
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition)
      << status.ToString();
  EXPECT_NE(status.message().find("tall"), std::string::npos)
      << status.ToString();
}

// Argument errors stay kInvalidArgument — a refresh must fail loudly on a
// bad call rather than silently falling back to a rebuild.
TEST(ApplyDeltaTest, WrongTableStaysInvalidArgument) {
  schema::CubeSchema schema = MakeSchema();
  schema::FactTable table(3, 1);
  AppendRandomRows(&table, 100, 6004);
  CureOptions options;
  FactInput input{.table = &table};
  auto cube = BuildCure(schema, input, options);
  ASSERT_TRUE(cube.ok());
  schema::FactTable other(3, 1);
  EXPECT_EQ(ApplyDelta(cube->get(), other, 0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      ApplyDelta(cube->get(), table, table.num_rows() + 1).status().code(),
      StatusCode::kInvalidArgument);
}

TEST(ApplyDeltaTest, IncrementalIsFasterThanRebuildForSmallDeltas) {
  schema::CubeSchema schema = MakeSchema();
  schema::FactTable table(3, 1);
  AppendRandomRows(&table, 20000, 7000);
  CureOptions options;
  FactInput input{.table = &table};
  auto cube = BuildCure(schema, input, options);
  ASSERT_TRUE(cube.ok());
  const double build_seconds = (*cube)->stats().build_seconds;

  const uint64_t old_rows = table.num_rows();
  AppendRandomRows(&table, 50, 7001);
  auto stats = ApplyDelta(cube->get(), table, old_rows);
  ASSERT_TRUE(stats.ok());
  // A 0.25% delta should be far cheaper than a full rebuild; allow a very
  // generous margin to stay robust on slow CI machines.
  EXPECT_LT(stats->seconds, build_seconds);
}

}  // namespace
}  // namespace cure
