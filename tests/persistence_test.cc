#include <gtest/gtest.h>

#include "engine/bubst.h"
#include "engine/buc.h"
#include "engine/cure.h"
#include "gen/datasets.h"
#include "gen/random.h"
#include "query/node_query.h"
#include "query/reference.h"
#include "storage/file_io.h"

namespace cure {
namespace {

using engine::BuildCure;
using engine::CureOptions;
using engine::FactInput;
using query::ResultSink;
using schema::NodeId;

gen::Dataset MakeHier(uint64_t tuples, uint64_t seed) {
  gen::Dataset ds;
  std::vector<schema::Dimension> dims;
  dims.push_back(schema::Dimension::Linear("A", {25, 5}));
  dims.push_back(schema::Dimension::Linear("B", {16, 4}));
  dims.push_back(schema::Dimension::Flat("C", 7));
  auto schema = schema::CubeSchema::Create(
      std::move(dims), 1,
      {{schema::AggFn::kSum, 0, "sum"}, {schema::AggFn::kCount, 0, "cnt"}});
  EXPECT_TRUE(schema.ok());
  ds.schema = std::move(schema).value();
  ds.table = schema::FactTable(3, 1);
  gen::Rng rng(seed);
  for (uint64_t t = 0; t < tuples; ++t) {
    const uint32_t row[3] = {static_cast<uint32_t>(rng.NextRange(25)),
                             static_cast<uint32_t>(rng.NextRange(16)),
                             static_cast<uint32_t>(rng.NextRange(7))};
    const int64_t m = static_cast<int64_t>(rng.NextRange(100));
    ds.table.AppendRow(row, &m);
  }
  return ds;
}

void ExpectMatchesReference(const engine::CureCube& cube, const gen::Dataset& ds) {
  auto engine = query::CureQueryEngine::Create(&cube, 1.0);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  const schema::NodeIdCodec& codec = cube.store().codec();
  for (NodeId id = 0; id < codec.num_nodes(); ++id) {
    ResultSink sink(true);
    ASSERT_TRUE((*engine)->QueryNode(id, &sink).ok());
    auto expected = query::ReferenceNodeResult(ds.schema, ds.table, id);
    ASSERT_TRUE(expected.ok());
    EXPECT_TRUE(query::SameResults(sink.TakeRows(), std::move(expected).value()))
        << "node " << id;
  }
}

TEST(PersistenceTest, SpilledCureCubeAnswersIdentically) {
  gen::Dataset ds = MakeHier(800, 61);
  CureOptions options;
  FactInput input{.table = &ds.table};
  auto cube = BuildCure(ds.schema, input, options);
  ASSERT_TRUE(cube.ok());
  const uint64_t before = (*cube)->TotalBytes();
  const auto counts_before = (*cube)->store().Counts();
  const std::string path = "/tmp/cure_persist_test_cube.bin";
  ASSERT_TRUE((*cube)->SpillStoreToDisk(path).ok());
  EXPECT_EQ((*cube)->TotalBytes(), before);  // logical size preserved
  const auto counts_after = (*cube)->store().Counts();
  EXPECT_EQ(counts_before.nt, counts_after.nt);
  EXPECT_EQ(counts_before.tt, counts_after.tt);
  EXPECT_EQ(counts_before.cat, counts_after.cat);
  EXPECT_EQ(counts_before.aggregates, counts_after.aggregates);
  ExpectMatchesReference(**cube, ds);
  ASSERT_TRUE(storage::RemoveFile(path).ok());
}

TEST(PersistenceTest, SpilledCurePlusWithBitmaps) {
  gen::Dataset ds = MakeHier(900, 62);
  CureOptions options;
  FactInput input{.table = &ds.table};
  auto cube = BuildCure(ds.schema, input, options);
  ASSERT_TRUE(cube.ok());
  ASSERT_TRUE(engine::CurePostProcess(cube->get(), /*use_bitmaps=*/true).ok());
  const std::string path = "/tmp/cure_persist_test_plus.bin";
  ASSERT_TRUE((*cube)->SpillStoreToDisk(path).ok());
  ExpectMatchesReference(**cube, ds);
  ASSERT_TRUE(storage::RemoveFile(path).ok());
}

TEST(PersistenceTest, SpilledExternalCube) {
  gen::Dataset ds = MakeHier(1200, 63);
  storage::Relation rel = storage::Relation::Memory(ds.table.RecordSize());
  ASSERT_TRUE(ds.table.WriteTo(&rel).ok());
  CureOptions options;
  options.force_external = true;
  options.memory_budget_bytes = 16384;
  FactInput input{.relation = &rel};
  auto cube = BuildCure(ds.schema, input, options);
  ASSERT_TRUE(cube.ok()) << cube.status().ToString();
  ASSERT_TRUE((*cube)->stats().external);
  const std::string path = "/tmp/cure_persist_test_ext.bin";
  ASSERT_TRUE((*cube)->SpillStoreToDisk(path).ok());
  ExpectMatchesReference(**cube, ds);
  ASSERT_TRUE(storage::RemoveFile(path).ok());
}

TEST(PersistenceTest, SpilledDrCube) {
  gen::Dataset ds = MakeHier(700, 64);
  CureOptions options;
  options.dims_in_nt = true;
  FactInput input{.table = &ds.table};
  auto cube = BuildCure(ds.schema, input, options);
  ASSERT_TRUE(cube.ok());
  const std::string path = "/tmp/cure_persist_test_dr.bin";
  ASSERT_TRUE((*cube)->SpillStoreToDisk(path).ok());
  ExpectMatchesReference(**cube, ds);
  ASSERT_TRUE(storage::RemoveFile(path).ok());
}

TEST(PersistenceTest, SpilledBucCube) {
  gen::Dataset ds = MakeHier(500, 65);
  auto buc = engine::BuildBuc(ds.schema, ds.table, {});
  ASSERT_TRUE(buc.ok());
  const uint64_t bytes = (*buc)->store().TotalBytes();
  const std::string path = "/tmp/cure_persist_test_buc.bin";
  ASSERT_TRUE((*buc)->SpillStoreToDisk(path).ok());
  EXPECT_EQ((*buc)->store().TotalBytes(), bytes);
  query::BucQueryEngine engine(buc->get());
  const schema::NodeIdCodec codec((*buc)->schema());
  for (NodeId id = 0; id < codec.num_nodes(); ++id) {
    ResultSink sink(true);
    ASSERT_TRUE(engine.QueryNode(id, &sink).ok());
    auto expected = query::ReferenceNodeResult((*buc)->schema(), ds.table, id);
    ASSERT_TRUE(expected.ok());
    EXPECT_TRUE(query::SameResults(sink.TakeRows(), std::move(expected).value()));
  }
  ASSERT_TRUE(storage::RemoveFile(path).ok());
}

TEST(PersistenceTest, SpilledBubstCube) {
  gen::Dataset ds = MakeHier(500, 66);
  auto bubst = engine::BuildBubst(ds.schema, ds.table, {});
  ASSERT_TRUE(bubst.ok());
  const std::string path = "/tmp/cure_persist_test_bubst.bin";
  ASSERT_TRUE((*bubst)->SpillToDisk(path).ok());
  EXPECT_FALSE((*bubst)->monolithic().memory_backed());
  query::BubstQueryEngine engine(bubst->get());
  const schema::NodeIdCodec codec((*bubst)->schema());
  for (NodeId id = 0; id < codec.num_nodes(); id += 2) {
    ResultSink sink(true);
    ASSERT_TRUE(engine.QueryNode(id, &sink).ok());
    auto expected = query::ReferenceNodeResult((*bubst)->schema(), ds.table, id);
    ASSERT_TRUE(expected.ok());
    EXPECT_TRUE(query::SameResults(sink.TakeRows(), std::move(expected).value()));
  }
  ASSERT_TRUE(storage::RemoveFile(path).ok());
}

TEST(PersistenceTest, OpenPackedRejectsGarbage) {
  const std::string path = "/tmp/cure_persist_test_garbage.bin";
  storage::FileWriter writer;
  ASSERT_TRUE(writer.Open(path).ok());
  ASSERT_TRUE(writer.Append("this is not a cube", 18).ok());
  ASSERT_TRUE(writer.Close().ok());
  gen::Dataset ds = MakeHier(5, 67);
  EXPECT_FALSE(cube::CubeStore::OpenPacked(path, &ds.schema).ok());
  ASSERT_TRUE(storage::RemoveFile(path).ok());
}

}  // namespace
}  // namespace cure
