// Randomized property tests: for seeded random schemas (random dimension
// counts, hierarchy depths, cardinalities, even complex DAG hierarchies),
// the structural invariants must hold — plans cover lattices exactly once,
// codecs round-trip, level maps compose — and small random cubes must match
// brute force.

#include <gtest/gtest.h>

#include "engine/cure.h"
#include "gen/datasets.h"
#include "gen/random.h"
#include "plan/execution_plan.h"
#include "query/node_query.h"
#include "query/reference.h"
#include "storage/external_sort.h"

namespace cure {
namespace {

using schema::AggFn;
using schema::CubeSchema;
using schema::Dimension;
using schema::Level;
using schema::NodeId;

Dimension RandomLinearDimension(gen::Rng* rng, const std::string& name) {
  const int depth = 1 + static_cast<int>(rng->NextRange(4));
  std::vector<uint32_t> cards(depth);
  uint32_t card = 4 + static_cast<uint32_t>(rng->NextRange(60));
  for (int l = 0; l < depth; ++l) {
    cards[l] = card;
    card = std::max<uint32_t>(2, card / (2 + static_cast<uint32_t>(rng->NextRange(3))));
  }
  return Dimension::Linear(name, cards);
}

// A random complex hierarchy: leaf with two independent parents, one of
// which rolls further up.
Dimension RandomComplexDimension(gen::Rng* rng, const std::string& name) {
  const uint32_t leaf = 12 + static_cast<uint32_t>(rng->NextRange(48));
  std::vector<Level> levels(4);
  levels[0].name = "leaf";
  levels[0].cardinality = leaf;
  levels[0].parents = {1, 2};
  levels[1].name = "p1";
  levels[1].cardinality = (leaf + 2) / 3;
  levels[1].leaf_to_code.resize(leaf);
  for (uint32_t i = 0; i < leaf; ++i) levels[1].leaf_to_code[i] = i / 3;
  levels[2].name = "p2";
  levels[2].cardinality = (leaf + 3) / 4;
  levels[2].leaf_to_code.resize(leaf);
  for (uint32_t i = 0; i < leaf; ++i) levels[2].leaf_to_code[i] = i / 4;
  levels[2].parents = {3};
  levels[3].name = "top";
  levels[3].cardinality = 2;
  levels[3].leaf_to_code.resize(leaf);
  for (uint32_t i = 0; i < leaf; ++i) {
    levels[3].leaf_to_code[i] = (i / 4) % 2;  // derived from p2
  }
  Result<Dimension> dim = Dimension::Create(name, std::move(levels));
  EXPECT_TRUE(dim.ok()) << dim.status().ToString();
  return std::move(dim).value();
}

CubeSchema RandomSchema(uint64_t seed, bool allow_complex) {
  gen::Rng rng(seed);
  const int num_dims = 1 + static_cast<int>(rng.NextRange(4));
  std::vector<Dimension> dims;
  for (int d = 0; d < num_dims; ++d) {
    const std::string name(1, static_cast<char>('A' + d));
    if (allow_complex && rng.NextRange(4) == 0) {
      dims.push_back(RandomComplexDimension(&rng, name));
    } else {
      dims.push_back(RandomLinearDimension(&rng, name));
    }
  }
  Result<CubeSchema> schema = CubeSchema::Create(
      std::move(dims), 1,
      {{AggFn::kSum, 0, "s"}, {AggFn::kCount, 0, "c"}});
  EXPECT_TRUE(schema.ok());
  return std::move(schema).value();
}

class RandomSchemaTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomSchemaTest, CodecRoundTripsEveryNode) {
  CubeSchema schema = RandomSchema(GetParam(), /*allow_complex=*/true);
  schema::NodeIdCodec codec(schema);
  for (NodeId id = 0; id < codec.num_nodes(); ++id) {
    EXPECT_EQ(codec.Encode(codec.Decode(id)), id);
  }
}

TEST_P(RandomSchemaTest, TallPlanCoversLatticeAndValidates) {
  CubeSchema schema = RandomSchema(GetParam(), /*allow_complex=*/true);
  plan::ExecutionPlan plan =
      plan::ExecutionPlan::Build(schema, plan::ExecutionPlan::Style::kTall);
  EXPECT_EQ(plan.num_nodes(), plan.codec().num_nodes());
  EXPECT_TRUE(plan.Validate().ok()) << plan.Validate().ToString();
  // Every path ends at the queried node and starts at the root.
  for (NodeId id = 0; id < plan.codec().num_nodes(); id += 7) {
    const std::vector<NodeId> path = plan.PathFromRoot(id);
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path.front(), plan.root());
    EXPECT_EQ(path.back(), id);
  }
}

TEST_P(RandomSchemaTest, ShortPlanCoversLattice) {
  CubeSchema schema = RandomSchema(GetParam(), /*allow_complex=*/false);
  plan::ExecutionPlan plan =
      plan::ExecutionPlan::Build(schema, plan::ExecutionPlan::Style::kShort);
  EXPECT_EQ(plan.num_nodes(), plan.codec().num_nodes());
}

TEST_P(RandomSchemaTest, LevelMapsCompose) {
  CubeSchema schema = RandomSchema(GetParam(), /*allow_complex=*/true);
  gen::Rng rng(GetParam() * 31);
  for (int d = 0; d < schema.num_dims(); ++d) {
    const Dimension& dim = schema.dim(d);
    for (int from = 0; from < dim.num_levels(); ++from) {
      for (int to = 0; to < dim.num_levels(); ++to) {
        if (!dim.Derives(from, to)) continue;
        auto map = dim.LevelToLevelMap(from, to);
        ASSERT_TRUE(map.ok());
        for (int i = 0; i < 20; ++i) {
          const uint32_t leaf =
              static_cast<uint32_t>(rng.NextRange(dim.leaf_cardinality()));
          EXPECT_EQ((*map)[dim.CodeAt(leaf, from)], dim.CodeAt(leaf, to));
        }
      }
    }
  }
}

TEST_P(RandomSchemaTest, RandomCubeMatchesReference) {
  CubeSchema schema = RandomSchema(GetParam(), /*allow_complex=*/true);
  gen::Rng rng(GetParam() * 17 + 1);
  schema::FactTable table(schema.num_dims(), 1);
  const uint64_t rows = 100 + rng.NextRange(400);
  std::vector<uint32_t> row(schema.num_dims());
  for (uint64_t t = 0; t < rows; ++t) {
    for (int d = 0; d < schema.num_dims(); ++d) {
      row[d] = static_cast<uint32_t>(rng.NextRange(schema.dim(d).leaf_cardinality()));
    }
    const int64_t m = static_cast<int64_t>(rng.NextRange(30));
    table.AppendRow(row.data(), &m);
  }
  gen::Dataset ds;
  ds.schema = schema;
  engine::CureOptions options;
  options.signature_pool_capacity = 256;
  engine::FactInput input{.table = &table};
  auto cube = engine::BuildCure(schema, input, options);
  ASSERT_TRUE(cube.ok()) << cube.status().ToString();
  auto engine = query::CureQueryEngine::Create(cube->get(), 1.0);
  ASSERT_TRUE(engine.ok());
  const schema::NodeIdCodec& codec = (*cube)->store().codec();
  for (NodeId id = 0; id < codec.num_nodes(); ++id) {
    query::ResultSink sink(true);
    ASSERT_TRUE((*engine)->QueryNode(id, &sink).ok());
    auto expected = query::ReferenceNodeResult(schema, table, id);
    ASSERT_TRUE(expected.ok());
    ASSERT_TRUE(query::SameResults(sink.TakeRows(), std::move(expected).value()))
        << "seed " << GetParam() << " node " << id;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSchemaTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

// External sort budget sweep: correctness independent of run size.
class ExternalSortBudgetTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExternalSortBudgetTest, SortsUnderAnyBudget) {
  const uint64_t budget = GetParam();
  storage::Relation input = storage::Relation::Memory(16);
  gen::Rng rng(77);
  const uint64_t n = 5000;
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t rec[2] = {rng.NextRange(100000), i};
    ASSERT_TRUE(input.Append(rec).ok());
  }
  storage::Relation output = storage::Relation::Memory(16);
  storage::ExternalSortOptions options;
  options.memory_budget_bytes = budget;
  options.temp_dir = "/tmp";
  storage::RecordLess less = [](const uint8_t* a, const uint8_t* b) {
    uint64_t ka, kb;
    memcpy(&ka, a, 8);
    memcpy(&kb, b, 8);
    return ka < kb;
  };
  ASSERT_TRUE(storage::ExternalSort(input, less, options, &output).ok());
  ASSERT_EQ(output.num_rows(), n);
  uint64_t prev = 0;
  uint64_t sum_payload = 0;
  storage::Relation::Scanner scan(output);
  while (const uint8_t* rec = scan.Next()) {
    uint64_t key, payload;
    memcpy(&key, rec, 8);
    memcpy(&payload, rec + 8, 8);
    ASSERT_GE(key, prev);
    prev = key;
    sum_payload += payload;
  }
  EXPECT_EQ(sum_payload, n * (n - 1) / 2);  // every record survived
}

INSTANTIATE_TEST_SUITE_P(Budgets, ExternalSortBudgetTest,
                         ::testing::Values(64, 256, 1024, 16384, 1 << 20));

}  // namespace
}  // namespace cure
