#include "engine/partition.h"

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <set>

#include "gen/datasets.h"
#include "gen/random.h"
#include "query/reference.h"
#include "storage/file_io.h"

namespace cure {
namespace engine {
namespace {

using gen::Dataset;
using schema::CubeSchema;
using schema::Dimension;

Dataset MakeSalesLike(uint64_t tuples, uint64_t seed) {
  // Product: barcode -> brand -> economic_strength, as in Table 1, but
  // scaled down: 200 -> 20 -> 4.
  Dataset ds;
  std::vector<Dimension> dims;
  dims.push_back(Dimension::Linear("Product", {200, 20, 4}));
  dims.push_back(Dimension::Flat("Store", 15));
  Result<CubeSchema> schema = CubeSchema::Create(
      std::move(dims), 1,
      {{schema::AggFn::kSum, 0, "rev"}, {schema::AggFn::kCount, 0, "cnt"}});
  EXPECT_TRUE(schema.ok());
  ds.schema = std::move(schema).value();
  ds.table = schema::FactTable(2, 1);
  gen::Rng rng(seed);
  for (uint64_t t = 0; t < tuples; ++t) {
    const uint32_t row[2] = {static_cast<uint32_t>(rng.NextRange(200)),
                             static_cast<uint32_t>(rng.NextRange(15))};
    const int64_t m = static_cast<int64_t>(rng.NextRange(100));
    ds.table.AppendRow(row, &m);
  }
  return ds;
}

storage::Relation ToRelation(const Dataset& ds) {
  storage::Relation rel = storage::Relation::Memory(ds.table.RecordSize());
  Status s = ds.table.WriteTo(&rel);
  EXPECT_TRUE(s.ok());
  return rel;
}

TEST(HistogramTest, ExactCountsPerLevel) {
  Dataset ds = MakeSalesLike(1000, 41);
  storage::Relation rel = ToRelation(ds);
  Result<std::vector<std::vector<uint64_t>>> hist =
      ComputeLevelHistograms(rel, ds.schema);
  ASSERT_TRUE(hist.ok());
  ASSERT_EQ(hist->size(), 3u);
  EXPECT_EQ((*hist)[0].size(), 200u);
  EXPECT_EQ((*hist)[1].size(), 20u);
  EXPECT_EQ((*hist)[2].size(), 4u);
  for (const auto& level : *hist) {
    uint64_t total = 0;
    for (uint64_t c : level) total += c;
    EXPECT_EQ(total, 1000u);
  }
  // Level 1 counts aggregate level 0 counts by block.
  const Dimension& product = ds.schema.dim(0);
  std::vector<uint64_t> rollup(20, 0);
  for (uint32_t leaf = 0; leaf < 200; ++leaf) {
    rollup[product.CodeAt(leaf, 1)] += (*hist)[0][leaf];
  }
  EXPECT_EQ(rollup, (*hist)[1]);
}

TEST(SelectLevelTest, PrefersHighestFeasibleLevel) {
  Dataset ds = MakeSalesLike(2000, 42);
  storage::Relation rel = ToRelation(ds);
  Result<std::vector<std::vector<uint64_t>>> hist =
      ComputeLevelHistograms(rel, ds.schema);
  ASSERT_TRUE(hist.ok());
  // Huge budget: level 2 (top) is feasible and maximal.
  PartitionOptions big;
  big.memory_budget_bytes = 1ull << 30;
  Result<LevelChoice> choice = SelectPartitionLevel(ds.schema, *hist, 2000, big);
  ASSERT_TRUE(choice.ok());
  EXPECT_EQ(choice->level, 2);

  // Budget that fits partitions of ~level-0 values but whose N estimate
  // rules out higher levels.
  PartitionOptions tight;
  tight.memory_budget_bytes = 16 * 1024;
  Result<LevelChoice> tight_choice =
      SelectPartitionLevel(ds.schema, *hist, 2000, tight);
  ASSERT_TRUE(tight_choice.ok());
  EXPECT_LT(tight_choice->level, 2);
  EXPECT_GE(tight_choice->level, 0);

  // Impossible budget.
  PartitionOptions impossible;
  impossible.memory_budget_bytes = 64;
  EXPECT_FALSE(SelectPartitionLevel(ds.schema, *hist, 2000, impossible).ok());
}

TEST(SelectLevelTest, RejectsComplexFirstDimension) {
  // A first dimension with two roots is not linear.
  std::vector<schema::Level> levels(3);
  levels[0].name = "leaf";
  levels[0].cardinality = 8;
  levels[0].parents = {1, 2};
  levels[1].name = "p1";
  levels[1].cardinality = 4;
  levels[1].leaf_to_code = {0, 0, 1, 1, 2, 2, 3, 3};
  levels[2].name = "p2";
  levels[2].cardinality = 2;
  levels[2].leaf_to_code = {0, 0, 0, 0, 1, 1, 1, 1};
  Result<Dimension> complex_dim = Dimension::Create("cx", std::move(levels));
  ASSERT_TRUE(complex_dim.ok());
  std::vector<Dimension> dims;
  dims.push_back(std::move(complex_dim).value());
  Result<CubeSchema> schema =
      CubeSchema::Create(std::move(dims), 1, {{schema::AggFn::kSum, 0, "m"}});
  ASSERT_TRUE(schema.ok());
  std::vector<std::vector<uint64_t>> hist = {std::vector<uint64_t>(8, 1),
                                             std::vector<uint64_t>(4, 2),
                                             std::vector<uint64_t>(2, 4)};
  PartitionOptions options;
  EXPECT_FALSE(SelectPartitionLevel(*schema, hist, 8, options).ok());
}

TEST(PartitionTest, PartitionsAreSoundAndComplete) {
  Dataset ds = MakeSalesLike(3000, 43);
  storage::Relation rel = ToRelation(ds);
  Result<std::vector<std::vector<uint64_t>>> hist =
      ComputeLevelHistograms(rel, ds.schema);
  ASSERT_TRUE(hist.ok());
  PartitionOptions options;
  options.memory_budget_bytes = 24 * 1024;
  options.temp_dir = "/tmp";
  Result<LevelChoice> choice =
      SelectPartitionLevel(ds.schema, *hist, ds.table.num_rows(), options);
  ASSERT_TRUE(choice.ok()) << choice.status().ToString();
  Result<PartitionOutcome> outcome =
      PartitionFact(rel, ds.schema, *choice, *hist, options);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_GT(outcome->partitions.size(), 1u);

  // Soundness: each value of A at the chosen level occurs in exactly one
  // partition; completeness: all rows present exactly once.
  const Dimension& product = ds.schema.dim(0);
  const size_t rec_size = PartitionRecordSize(ds.schema);
  std::map<uint32_t, size_t> value_to_partition;
  std::set<uint64_t> seen_rowids;
  for (size_t p = 0; p < outcome->partitions.size(); ++p) {
    storage::Relation::Scanner scan(outcome->partitions[p]);
    while (const uint8_t* raw = scan.Next()) {
      uint32_t leaf;
      std::memcpy(&leaf, raw, 4);
      uint64_t rowid;
      std::memcpy(&rowid, raw + rec_size - 8, 8);
      EXPECT_TRUE(seen_rowids.insert(rowid).second) << "duplicate row";
      const uint32_t value = product.CodeAt(leaf, choice->level);
      auto [it, inserted] = value_to_partition.try_emplace(value, p);
      if (!inserted) EXPECT_EQ(it->second, p) << "value split across partitions";
      // Row content matches the fact table.
      EXPECT_EQ(leaf, ds.table.dim(0, rowid));
    }
  }
  EXPECT_EQ(seen_rowids.size(), ds.table.num_rows());

  // Node N equals the reference result of node A_{L+1} B0 (lifted).
  const schema::NodeIdCodec codec(ds.schema);
  const int n_level = choice->level + 1;
  ASSERT_LT(n_level, product.num_levels());  // not top in this setup
  const schema::NodeId n_node = codec.Encode({n_level, 0});
  Result<std::vector<query::ResultSink::Row>> expected =
      query::ReferenceNodeResult(ds.schema, ds.table, n_node);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(outcome->n_table->num_rows, expected->size());
  // Spot-check: total SUM over N equals total SUM over the table.
  int64_t n_sum = 0;
  for (uint64_t r = 0; r < outcome->n_table->num_rows; ++r) {
    n_sum += outcome->n_table->aggrs[0][r];
  }
  int64_t table_sum = 0;
  for (uint64_t r = 0; r < ds.table.num_rows(); ++r) {
    table_sum += ds.table.measure(0, r);
  }
  EXPECT_EQ(n_sum, table_sum);
  // COUNT aggregate in N sums to the row count.
  int64_t n_count = 0;
  for (uint64_t r = 0; r < outcome->n_table->num_rows; ++r) {
    n_count += outcome->n_table->aggrs[1][r];
  }
  EXPECT_EQ(n_count, static_cast<int64_t>(ds.table.num_rows()));

  // Clean up partition files.
  for (storage::Relation& part : outcome->partitions) {
    const std::string path = part.path();
    part = storage::Relation();
    ASSERT_TRUE(storage::RemoveFile(path).ok());
  }
}

TEST(PartitionTest, TopLevelProjectsOutFirstDimension) {
  // Make the top level the only feasible choice by using a generous budget.
  Dataset ds = MakeSalesLike(500, 44);
  storage::Relation rel = ToRelation(ds);
  Result<std::vector<std::vector<uint64_t>>> hist =
      ComputeLevelHistograms(rel, ds.schema);
  ASSERT_TRUE(hist.ok());
  PartitionOptions options;
  options.memory_budget_bytes = 1ull << 30;
  Result<LevelChoice> choice =
      SelectPartitionLevel(ds.schema, *hist, ds.table.num_rows(), options);
  ASSERT_TRUE(choice.ok());
  ASSERT_EQ(choice->level, 2);  // top
  Result<PartitionOutcome> outcome =
      PartitionFact(rel, ds.schema, *choice, *hist, options);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->n_table->native_levels[0], cube::kNativeAll);
  // N is then node B0 (Store at leaf): 15 groups at most.
  EXPECT_LE(outcome->n_table->num_rows, 15u);
  for (storage::Relation& part : outcome->partitions) {
    const std::string path = part.path();
    part = storage::Relation();
    ASSERT_TRUE(storage::RemoveFile(path).ok());
  }
}

TEST(PartitionTest, Table1StyleLevelScaling)
{
  // The Table 1 narrative: as |R| grows relative to memory, the feasible
  // level L drops (more, finer partitions), while N grows.
  Dataset ds = MakeSalesLike(100, 45);
  storage::Relation rel = ToRelation(ds);
  Result<std::vector<std::vector<uint64_t>>> hist =
      ComputeLevelHistograms(rel, ds.schema);
  ASSERT_TRUE(hist.ok());
  // Reuse the same histogram but pretend different row counts by scaling it.
  std::vector<std::vector<uint64_t>> scaled = *hist;
  int prev_level = 100;
  for (uint64_t scale : {1, 20, 400}) {
    for (size_t l = 0; l < scaled.size(); ++l) {
      for (size_t v = 0; v < scaled[l].size(); ++v) {
        scaled[l][v] = (*hist)[l][v] * scale;
      }
    }
    PartitionOptions options;
    options.memory_budget_bytes = 64 * 1024;
    Result<LevelChoice> choice =
        SelectPartitionLevel(ds.schema, scaled, 100 * scale, options);
    if (!choice.ok()) break;  // eventually infeasible, also fine
    EXPECT_LE(choice->level, prev_level);
    prev_level = choice->level;
  }
}

}  // namespace
}  // namespace engine
}  // namespace cure
