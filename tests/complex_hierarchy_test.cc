#include <gtest/gtest.h>

#include "engine/cure.h"
#include "gen/datasets.h"
#include "gen/random.h"
#include "query/node_query.h"
#include "query/reference.h"

namespace cure {
namespace {

using engine::BuildCure;
using engine::CureOptions;
using engine::FactInput;
using query::ResultSink;
using schema::Dimension;
using schema::Level;
using schema::NodeId;

// The paper's Fig. 5 complex time hierarchy: day -> {week, month} -> year,
// with 28-day months so both roll-ups are functional.
Dimension MakeTimeDimension(uint32_t days) {
  std::vector<Level> levels(4);
  levels[0].name = "day";
  levels[0].cardinality = days;
  levels[0].parents = {1, 2};
  levels[1].name = "week";
  levels[1].cardinality = (days + 6) / 7;
  levels[1].leaf_to_code.resize(days);
  for (uint32_t d = 0; d < days; ++d) levels[1].leaf_to_code[d] = d / 7;
  levels[2].name = "month";
  levels[2].cardinality = (days + 27) / 28;
  levels[2].leaf_to_code.resize(days);
  for (uint32_t d = 0; d < days; ++d) levels[2].leaf_to_code[d] = d / 28;
  levels[2].parents = {3};
  levels[3].name = "year";
  levels[3].cardinality = (days + 363) / 364;
  levels[3].leaf_to_code.resize(days);
  for (uint32_t d = 0; d < days; ++d) levels[3].leaf_to_code[d] = d / 364;
  Result<Dimension> dim = Dimension::Create("time", std::move(levels));
  EXPECT_TRUE(dim.ok()) << dim.status().ToString();
  return std::move(dim).value();
}

gen::Dataset MakeComplexDataset(uint64_t tuples, uint64_t seed) {
  gen::Dataset ds;
  std::vector<Dimension> dims;
  dims.push_back(MakeTimeDimension(728));  // 2 years
  dims.push_back(Dimension::Linear("Product", {20, 4}));
  dims.push_back(Dimension::Flat("Channel", 3));
  Result<schema::CubeSchema> schema = schema::CubeSchema::Create(
      std::move(dims), 1,
      {{schema::AggFn::kSum, 0, "sum"}, {schema::AggFn::kCount, 0, "cnt"}});
  EXPECT_TRUE(schema.ok());
  ds.schema = std::move(schema).value();
  ds.table = schema::FactTable(3, 1);
  gen::Rng rng(seed);
  for (uint64_t t = 0; t < tuples; ++t) {
    const uint32_t row[3] = {static_cast<uint32_t>(rng.NextRange(728)),
                             static_cast<uint32_t>(rng.NextRange(20)),
                             static_cast<uint32_t>(rng.NextRange(3))};
    const int64_t m = static_cast<int64_t>(rng.NextRange(40));
    ds.table.AppendRow(row, &m);
  }
  return ds;
}

TEST(ComplexHierarchyTest, LatticeSize) {
  gen::Dataset ds = MakeComplexDataset(10, 51);
  schema::NodeIdCodec codec(ds.schema);
  // time has 4 levels (+ALL), product 2 (+ALL), channel 1 (+ALL).
  EXPECT_EQ(codec.num_nodes(), 5u * 3 * 2);
}

TEST(ComplexHierarchyTest, CubeMatchesReferenceOnEveryNode) {
  gen::Dataset ds = MakeComplexDataset(900, 52);
  CureOptions options;
  options.signature_pool_capacity = 512;
  FactInput input{.table = &ds.table};
  auto cube = BuildCure(ds.schema, input, options);
  ASSERT_TRUE(cube.ok()) << cube.status().ToString();
  auto engine = query::CureQueryEngine::Create(cube->get(), 1.0);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  const schema::NodeIdCodec& codec = (*cube)->store().codec();
  for (NodeId id = 0; id < codec.num_nodes(); ++id) {
    ResultSink sink(true);
    ASSERT_TRUE((*engine)->QueryNode(id, &sink).ok());
    auto expected = query::ReferenceNodeResult(ds.schema, ds.table, id);
    ASSERT_TRUE(expected.ok());
    EXPECT_TRUE(query::SameResults(sink.TakeRows(), std::move(expected).value()))
        << "node " << codec.Name(id, ds.schema) << " (" << id << ")";
  }
}

TEST(ComplexHierarchyTest, CurePlusAndDrVariants) {
  gen::Dataset ds = MakeComplexDataset(700, 53);
  for (const bool dr : {false, true}) {
    CureOptions options;
    options.dims_in_nt = dr;
    FactInput input{.table = &ds.table};
    auto cube = BuildCure(ds.schema, input, options);
    ASSERT_TRUE(cube.ok());
    ASSERT_TRUE(engine::CurePostProcess(cube->get()).ok());
    auto engine = query::CureQueryEngine::Create(cube->get(), 1.0);
    ASSERT_TRUE(engine.ok());
    const schema::NodeIdCodec& codec = (*cube)->store().codec();
    for (NodeId id = 0; id < codec.num_nodes(); id += 3) {
      ResultSink sink(true);
      ASSERT_TRUE((*engine)->QueryNode(id, &sink).ok());
      auto expected = query::ReferenceNodeResult(ds.schema, ds.table, id);
      ASSERT_TRUE(expected.ok());
      EXPECT_TRUE(
          query::SameResults(sink.TakeRows(), std::move(expected).value()))
          << "dr=" << dr << " node " << id;
    }
  }
}

TEST(ComplexHierarchyTest, ExternalPathWithComplexNonFirstDimension) {
  // Partitioning requires a linear *first* dimension, but later dimensions
  // may be complex.
  gen::Dataset ds;
  std::vector<Dimension> dims;
  dims.push_back(Dimension::Linear("Product", {40, 8, 2}));
  dims.push_back(MakeTimeDimension(364));
  Result<schema::CubeSchema> schema = schema::CubeSchema::Create(
      std::move(dims), 1, {{schema::AggFn::kSum, 0, "sum"}});
  ASSERT_TRUE(schema.ok());
  ds.schema = std::move(schema).value();
  ds.table = schema::FactTable(2, 1);
  gen::Rng rng(54);
  for (uint64_t t = 0; t < 800; ++t) {
    const uint32_t row[2] = {static_cast<uint32_t>(rng.NextRange(40)),
                             static_cast<uint32_t>(rng.NextRange(364))};
    const int64_t m = static_cast<int64_t>(rng.NextRange(30));
    ds.table.AppendRow(row, &m);
  }
  storage::Relation rel = storage::Relation::Memory(ds.table.RecordSize());
  ASSERT_TRUE(ds.table.WriteTo(&rel).ok());

  CureOptions options;
  options.force_external = true;
  options.memory_budget_bytes = 16384;
  FactInput input{.relation = &rel};
  auto cube = BuildCure(ds.schema, input, options);
  ASSERT_TRUE(cube.ok()) << cube.status().ToString();
  EXPECT_TRUE((*cube)->stats().external);
  auto engine = query::CureQueryEngine::Create(cube->get(), 1.0);
  ASSERT_TRUE(engine.ok());
  const schema::NodeIdCodec& codec = (*cube)->store().codec();
  for (NodeId id = 0; id < codec.num_nodes(); ++id) {
    ResultSink sink(true);
    ASSERT_TRUE((*engine)->QueryNode(id, &sink).ok());
    auto expected = query::ReferenceNodeResult(ds.schema, ds.table, id);
    ASSERT_TRUE(expected.ok());
    EXPECT_TRUE(query::SameResults(sink.TakeRows(), std::move(expected).value()))
        << "node " << id;
  }
}

}  // namespace
}  // namespace cure
