// Reproduces the Sec. 7 remark on count-iceberg queries: answering
// HAVING count(*) >= min_count over a CURE cube skips TT relations
// entirely (a TT's count is always 1), which makes such queries orders of
// magnitude faster than over formats that must scan everything. Also shows
// iceberg *construction* (BUC's native capability, inherited by CURE).

#include "bench/bench_util.h"

using namespace cure;         // NOLINT
using namespace cure::bench;  // NOLINT

int main() {
  PrintHeader("Sec. 7 — count-iceberg queries and iceberg construction");
  const uint64_t divisor = 32 * static_cast<uint64_t>(ScaleEnv(1));
  const size_t num_queries = static_cast<size_t>(QueriesEnv(100));
  gen::Dataset ds = gen::MakeCovTypeProxy(divisor);
  engine::FactInput input{.table = &ds.table};

  CureBuildResult cure = BuildCureVariant("CURE", ds.schema, input, {}, false);
  auto engine = query::CureQueryEngine::Create(cure.cube.get(), 1.0);
  CURE_CHECK(engine.ok());
  const schema::NodeIdCodec codec(cure.cube->schema());
  const std::vector<schema::NodeId> workload =
      query::RandomNodeWorkload(codec, num_queries, /*seed=*/7);
  const int count_agg = 1;

  PrintSubHeader(ds.name + " — avg QRT of count-iceberg queries (" +
                 std::to_string(num_queries) + " random nodes)");
  std::printf("%-18s %14s %16s\n", "HAVING count >=", "avg QRT", "total tuples");
  for (int64_t min_count : {1, 2, 10, 100}) {
    const query::QrtStats stats = MeasureEngineQrt(
        workload, [&](schema::NodeId id, query::ResultSink* sink) {
          if (min_count <= 1) return (*engine)->QueryNode(id, sink);
          return (*engine)->QueryNodeCountIceberg(id, count_agg, min_count, sink);
        });
    std::printf("%-18lld %14s %16llu\n", static_cast<long long>(min_count),
                FormatSeconds(stats.avg_seconds).c_str(),
                static_cast<unsigned long long>(stats.total_tuples));
  }

  PrintSubHeader(ds.name + " — iceberg cube construction (minsup sweep)");
  std::vector<BuildRow> rows;
  for (uint64_t minsup : {uint64_t{1}, uint64_t{2}, uint64_t{10}, uint64_t{100}}) {
    engine::CureOptions options;
    options.min_support = minsup;
    CureBuildResult result = BuildCureVariant(
        "minsup=" + std::to_string(minsup), ds.schema, input, options, false);
    rows.push_back(result.row);
  }
  PrintBuildRows(rows);
  std::printf(
      "\nShape check vs paper: iceberg queries (count >= 2) are orders of "
      "magnitude faster than full queries because every TT relation is "
      "skipped; iceberg construction shrinks time and space steeply with "
      "minsup.\n");
  return 0;
}
