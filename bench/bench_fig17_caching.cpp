// Reproduces Figure 17: effect of fact-table caching on average QRT.
//
// The fact table lives on disk; the x-axis is the fraction of it pinned in
// the buffer cache. CURE's queries dereference row-ids through the fact
// table, so they accelerate as the cached portion grows; BUC stores full
// tuples per node and is insensitive to fact-table caching (flat line).
// CovType is sparser (more row-id dereferences per node), so its curve
// starts higher — exactly the paper's observation.

#include "bench/bench_util.h"
#include "storage/file_io.h"
#include "storage/relation.h"

using namespace cure;         // NOLINT
using namespace cure::bench;  // NOLINT

namespace {

void RunDataset(const gen::Dataset& ds, size_t num_queries) {
  // Spill the fact table to disk.
  const std::string path = "/tmp/cure_bench_fig17_" + ds.name + ".bin";
  auto rel = storage::Relation::CreateFile(path, ds.table.RecordSize());
  CURE_CHECK(rel.ok()) << rel.status().ToString();
  CURE_CHECK_OK(ds.table.WriteTo(&rel.value()));
  CURE_CHECK_OK(rel->Seal());

  engine::FactInput input{.relation = &rel.value()};
  engine::CureOptions options;
  CureBuildResult cure = BuildCureVariant("CURE", ds.schema, input, options,
                                          /*post_process=*/false);
  CureBuildResult cure_plus = BuildCureVariant("CURE+", ds.schema, input, options,
                                               /*post_process=*/true);
  auto buc = engine::BuildBuc(ds.schema, ds.table, {});
  CURE_CHECK(buc.ok());
  // All cubes disk-resident; only the *fact table* cache fraction varies.
  SpillCure(cure.cube.get(), path + ".cure");
  SpillCure(cure_plus.cube.get(), path + ".plus");
  CURE_CHECK_OK((*buc)->SpillStoreToDisk(path + ".buc"));
  query::BucQueryEngine buc_engine(buc->get());

  const schema::NodeIdCodec codec(cure.cube->schema());
  const std::vector<schema::NodeId> workload =
      query::RandomNodeWorkload(codec, num_queries, /*seed=*/17);

  PrintSubHeader(ds.name + " — avg QRT vs cached fraction of the fact table (" +
                 std::to_string(num_queries) + " node queries)");
  std::printf("%-8s %14s %14s %14s\n", "cache", "CURE", "CURE+", "BUC");
  for (double fraction : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    auto cure_engine = query::CureQueryEngine::Create(cure.cube.get(), fraction);
    auto plus_engine = query::CureQueryEngine::Create(cure_plus.cube.get(), fraction);
    CURE_CHECK(cure_engine.ok() && plus_engine.ok());
    const query::QrtStats cure_qrt = MeasureEngineQrt(
        workload, [&](schema::NodeId id, query::ResultSink* sink) {
          return (*cure_engine)->QueryNode(id, sink);
        });
    const query::QrtStats plus_qrt = MeasureEngineQrt(
        workload, [&](schema::NodeId id, query::ResultSink* sink) {
          return (*plus_engine)->QueryNode(id, sink);
        });
    // BUC does not touch the fact table at query time; measured once per
    // fraction anyway to show the flat line.
    const query::QrtStats buc_qrt = MeasureEngineQrt(
        workload, [&](schema::NodeId id, query::ResultSink* sink) {
          return buc_engine.QueryNode(id, sink);
        });
    std::printf("%-8.2f %14s %14s %14s\n", fraction,
                FormatSeconds(cure_qrt.avg_seconds).c_str(),
                FormatSeconds(plus_qrt.avg_seconds).c_str(),
                FormatSeconds(buc_qrt.avg_seconds).c_str());
  }
  CURE_CHECK_OK(storage::RemoveFile(path));
  CURE_CHECK_OK(storage::RemoveFile(path + ".cure"));
  CURE_CHECK_OK(storage::RemoveFile(path + ".plus"));
  CURE_CHECK_OK(storage::RemoveFile(path + ".buc"));
}

}  // namespace

int main() {
  PrintHeader("Figure 17 — effect of fact-table caching on average QRT");
  const uint64_t divisor = 32 * static_cast<uint64_t>(ScaleEnv(1));
  const size_t num_queries = static_cast<size_t>(QueriesEnv(100));
  RunDataset(gen::MakeCovTypeProxy(divisor), num_queries);
  RunDataset(gen::MakeSep85LProxy(divisor), num_queries);
  std::printf(
      "\nShape check vs paper: CURE/CURE+ QRT falls as the cached fraction "
      "grows; CovType (sparser, more dereferences) benefits most; BUC is "
      "flat; with full caching CURE+ is competitive with BUC.\n");
  return 0;
}
