// Scatter–gather serving tier: QPS and latency of cure_router over a
// loopback cluster as the shard count scales (1/2/3 shards, one replica
// each), against the same cube served by a single node.
//
// Every shard runs a real CubeServer + TcpLineServer, so each routed query
// pays S loopback round trips plus the router's re-aggregation merge. All
// responses are checked against the serial single-node engine (count +
// order-independent checksum) — a mismatch aborts the bench. Expected
// shape: per-query latency grows with the merge fan-in (the router
// re-aggregates S partial relations, and partials overlap heavily under
// skew), while QPS holds roughly flat as client concurrency spreads over
// the shards' independent worker pools.

#include <atomic>
#include <cinttypes>
#include <thread>

#include "bench/bench_util.h"
#include "common/histogram.h"
#include "gen/random.h"
#include "gen/zipf.h"
#include "router/router.h"
#include "schema/fact_table.h"
#include "serve/cube_server.h"
#include "serve/tcp_server.h"

using namespace cure;         // NOLINT
using namespace cure::bench;  // NOLINT

namespace {

struct Expected {
  uint64_t count = 0;
  uint64_t checksum = 0;
};

/// Contiguous disjoint row ranges — the partitioning `cure_tool shard`
/// applies.
std::vector<schema::FactTable> SplitTable(const schema::FactTable& table,
                                          int parts) {
  std::vector<schema::FactTable> out;
  const uint64_t rows = table.num_rows();
  std::vector<uint32_t> dims(table.num_dims());
  std::vector<int64_t> measures(table.num_measures());
  for (int k = 0; k < parts; ++k) {
    schema::FactTable part(table.num_dims(), table.num_measures());
    const uint64_t begin = rows * k / parts;
    const uint64_t end = rows * (k + 1) / parts;
    for (uint64_t row = begin; row < end; ++row) {
      for (int d = 0; d < table.num_dims(); ++d) dims[d] = table.dim(d, row);
      for (int m = 0; m < table.num_measures(); ++m) {
        measures[m] = table.measure(m, row);
      }
      part.AppendRow(dims.data(), measures.data());
    }
    out.push_back(std::move(part));
  }
  return out;
}

/// Renders a node id as the line protocol's spec ("A_L1,B_L0" / "ALL").
std::string NodeSpec(const schema::CubeSchema& schema,
                     const schema::NodeIdCodec& codec, schema::NodeId id) {
  const std::vector<int> levels = codec.Decode(id);
  std::string spec;
  for (size_t d = 0; d < levels.size(); ++d) {
    if (levels[d] == schema.dim(static_cast<int>(d)).all_level()) continue;
    if (!spec.empty()) spec += ',';
    spec += schema.dim(static_cast<int>(d)).level(levels[d]).name;
  }
  return spec.empty() ? "ALL" : spec;
}

/// Parses "OK <count> <checksum-hex> ..." — rows are not retained; the
/// checksum covers them.
bool ParseHeader(const std::string& response, Expected* out) {
  uint64_t count = 0;
  unsigned long long checksum = 0;
  if (std::sscanf(response.c_str(), "OK %" SCNu64 " %llx", &count,
                  &checksum) != 2) {
    return false;
  }
  out->count = count;
  out->checksum = checksum;
  return true;
}

void RunCluster(JsonReport* json) {
  const int64_t scale = ScaleEnv(4);
  const uint64_t tuples = 1000000 / static_cast<uint64_t>(scale);
  const size_t num_queries = static_cast<size_t>(QueriesEnv(48));
  const int kClients = 4;
  const int kRounds = 3;

  gen::Dataset ds;
  ds.name = "cluster";
  std::vector<schema::Dimension> dims;
  dims.push_back(schema::Dimension::Linear("A", {100, 20, 4}));
  dims.push_back(schema::Dimension::Linear("B", {50, 10}));
  dims.push_back(schema::Dimension::Flat("C", 12));
  auto schema = schema::CubeSchema::Create(
      std::move(dims), 1,
      {{schema::AggFn::kSum, 0, "s"},
       {schema::AggFn::kCount, 0, "c"},
       {schema::AggFn::kMin, 0, "lo"},
       {schema::AggFn::kMax, 0, "hi"}});
  CURE_CHECK(schema.ok());
  ds.schema = std::move(schema).value();
  ds.table = schema::FactTable(3, 1);
  gen::Rng rng(7);
  gen::ZipfSampler za(100, 1.0), zb(50, 0.8), zc(12, 0.5);
  for (uint64_t t = 0; t < tuples; ++t) {
    const uint32_t row[3] = {za.Sample(&rng), zb.Sample(&rng), zc.Sample(&rng)};
    const int64_t m = static_cast<int64_t>(rng.NextRange(10000));
    ds.table.AppendRow(row, &m);
  }

  // Single-node reference cube + serial baseline for correctness checks.
  engine::FactInput input{.table = &ds.table};
  auto whole = engine::BuildCure(ds.schema, input, engine::CureOptions{});
  CURE_CHECK(whole.ok()) << whole.status().ToString();
  const schema::NodeIdCodec& codec = (*whole)->store().codec();
  auto serial = query::CureQueryEngine::Create(whole->get(), 1.0);
  CURE_CHECK(serial.ok());

  const std::vector<schema::NodeId> workload =
      query::RandomNodeWorkload(codec, num_queries, /*seed=*/19,
                                /*unique=*/true);
  std::vector<std::string> lines(workload.size());
  std::vector<Expected> expected(workload.size());
  for (size_t i = 0; i < workload.size(); ++i) {
    lines[i] = "QUERY " + NodeSpec(ds.schema, codec, workload[i]);
    query::ResultSink sink;
    CURE_CHECK_OK((*serial)->QueryNode(workload[i], &sink));
    expected[i] = {sink.count(), sink.checksum()};
  }

  PrintSubHeader(
      "routed QPS / latency vs shard count (" + std::to_string(tuples) +
      " tuples, " + std::to_string(workload.size()) + " unique node queries x " +
      std::to_string(kRounds) + " rounds x " + std::to_string(kClients) +
      " clients, serial-checked)");
  std::printf("%-8s %10s %10s %10s %10s %10s\n", "shards", "QPS", "p50_us",
              "p95_us", "p99_us", "max_us");

  for (const int shards : {1, 2, 3}) {
    const std::vector<schema::FactTable> parts = SplitTable(ds.table, shards);
    std::vector<std::unique_ptr<engine::CureCube>> cubes;
    std::vector<std::unique_ptr<serve::CubeServer>> servers;
    std::vector<std::unique_ptr<serve::TcpLineServer>> tcps;
    router::ShardMap map;
    for (const schema::FactTable& part : parts) {
      engine::FactInput shard_input{.table = &part};
      auto cube =
          engine::BuildCure(ds.schema, shard_input, engine::CureOptions{});
      CURE_CHECK(cube.ok()) << cube.status().ToString();
      cubes.push_back(std::move(cube).value());
      serve::CubeServerOptions server_options;
      server_options.num_threads = 4;
      server_options.max_inflight = 4096;
      auto server = serve::CubeServer::Create(cubes.back().get(), server_options);
      CURE_CHECK(server.ok()) << server.status().ToString();
      servers.push_back(std::move(server).value());
      auto tcp = serve::TcpLineServer::Start(servers.back().get(),
                                             serve::TcpServerOptions{});
      CURE_CHECK(tcp.ok()) << tcp.status().ToString();
      tcps.push_back(std::move(tcp).value());
      map.shards.push_back({{"127.0.0.1", tcps.back()->port()}});
    }
    auto router =
        router::CureRouter::Create(&ds.schema, map, router::RouterOptions{});
    CURE_CHECK(router.ok()) << router.status().ToString();

    LogHistogram latency;
    std::atomic<uint64_t> mismatches{0};
    Stopwatch watch;
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        const size_t offset =
            (static_cast<size_t>(c) * lines.size()) / kClients;
        for (int r = 0; r < kRounds; ++r) {
          for (size_t i = 0; i < lines.size(); ++i) {
            const size_t q = (offset + i) % lines.size();
            Stopwatch one;
            const std::string response = (*router)->HandleLine(lines[q]);
            latency.Record(static_cast<int64_t>(one.ElapsedSeconds() * 1e6));
            Expected got;
            if (!ParseHeader(response, &got) ||
                got.count != expected[q].count ||
                got.checksum != expected[q].checksum) {
              mismatches.fetch_add(1, std::memory_order_relaxed);
            }
          }
        }
      });
    }
    for (std::thread& t : clients) t.join();
    const double seconds = watch.ElapsedSeconds();
    CURE_CHECK_EQ(mismatches.load(), 0ull)
        << "routed results diverged from the serial baseline";

    const LogHistogram::Snapshot snap = latency.TakeSnapshot();
    const double qps = static_cast<double>(snap.count) / seconds;
    std::printf("%-8d %10.0f %10" PRId64 " %10" PRId64 " %10" PRId64
                " %10" PRId64 "\n",
                shards, qps, snap.p50, snap.p95, snap.p99, snap.max);
    json->BeginSeries("shards=" + std::to_string(shards));
    json->Add("qps", qps);
    json->Add("p50_us", static_cast<double>(snap.p50));
    json->Add("p95_us", static_cast<double>(snap.p95));
    json->Add("p99_us", static_cast<double>(snap.p99));
    json->Add("max_us", static_cast<double>(snap.max));
    json->Add("queries", static_cast<double>(snap.count));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_out = ParseJsonOutArg(argc, argv);
  PrintHeader("cure_router scatter-gather cluster (QPS vs shard count)");
  JsonReport json("cluster");
  RunCluster(&json);
  if (!json_out.empty()) json.WriteOrDie(json_out);
  return 0;
}
