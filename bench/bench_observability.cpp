// bench_observability — measures what the observability layer costs:
//
//   1. the disabled fast path: ns per unarmed TraceSpan (one relaxed
//      atomic load — the price every instrumented call site pays forever)
//   2. a Zipf cube build with tracing off vs on
//   3. a CubeServer::Execute workload with tracing off vs on
//   4. the `profile=1` request token on the line protocol: queries with no
//      token (the disarmed per-request profiler — a token scan plus one
//      relaxed Tracer::enabled() load) vs queries that ask for the
//      "% profile" stage breakdown
//
// The enabled-mode run's trace is exported and validated with the in-tree
// Chrome-trace checker (the same one behind `cure_tool tracecheck`).
// DESIGN.md §12's budget: disabled tracing must cost <2% of build/serve
// throughput; this bench is how that number is kept honest.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/trace.h"
#include "query/workload.h"
#include "serve/cube_server.h"
#include "serve/tcp_server.h"
#include "storage/file_io.h"

using namespace cure;         // NOLINT
using namespace cure::bench;  // NOLINT

namespace {

double MeasureBuild(const gen::Dataset& ds, bool trace) {
  Tracer::Instance().Disable();
  if (trace) Tracer::Instance().Enable();
  engine::FactInput input{.table = &ds.table};
  engine::CureOptions options;
  options.trace = trace;
  auto cube = engine::BuildCure(ds.schema, input, options);
  CURE_CHECK(cube.ok()) << cube.status().ToString();
  return (*cube)->stats().build_seconds;
}

/// Renders a node id as the line protocol's spec ("A_L1,B_L0" / "ALL").
std::string NodeSpec(const schema::CubeSchema& schema,
                     const schema::NodeIdCodec& codec, schema::NodeId id) {
  const std::vector<int> levels = codec.Decode(id);
  std::string spec;
  for (size_t d = 0; d < levels.size(); ++d) {
    if (levels[d] == schema.dim(static_cast<int>(d)).all_level()) continue;
    if (!spec.empty()) spec += ',';
    spec += schema.dim(static_cast<int>(d)).level(levels[d]).name;
  }
  return spec.empty() ? "ALL" : spec;
}

}  // namespace

int main() {
  PrintHeader("Observability overhead (tracing disabled vs enabled)");

  // 1. The disabled fast path: what every instrumented call site costs when
  // no one is tracing.
  {
    Tracer::Instance().Disable();
    constexpr int kIters = 5000000;
    Stopwatch watch;
    for (int i = 0; i < kIters; ++i) {
      CURE_TRACE_SPAN("cure.bench.noop", "i", static_cast<uint64_t>(i));
    }
    std::printf("disabled span fast path: %.2f ns/span (%d spans)\n",
                watch.ElapsedSeconds() * 1e9 / kIters, kIters);
  }

  gen::SyntheticSpec spec;
  spec.num_dims = 5;
  spec.num_tuples = static_cast<uint64_t>(400000 / ScaleEnv(4));
  spec.zipf = 0.8;
  const gen::Dataset ds = gen::MakeSynthetic(spec);

  // 2. Build overhead. The enabled run records per-stage, per-partition and
  // per-edge spans into the ring buffers (kept for the export below).
  PrintSubHeader("build: " + std::to_string(spec.num_tuples) + " Zipf tuples, " +
                 std::to_string(spec.num_dims) + " dims");
  Tracer::Instance().Reset();
  const double build_off = MeasureBuild(ds, /*trace=*/false);
  const double build_on = MeasureBuild(ds, /*trace=*/true);
  std::printf("%-22s %10.3f s\n", "tracing disabled", build_off);
  std::printf("%-22s %10.3f s  (%+.1f%%, %llu events, %llu dropped)\n",
              "tracing enabled", build_on,
              build_off > 0 ? (build_on / build_off - 1.0) * 100.0 : 0.0,
              static_cast<unsigned long long>(
                  Tracer::Instance().recorded_events()),
              static_cast<unsigned long long>(
                  Tracer::Instance().dropped_events()));

  // 3. Serve overhead: the full Execute path (admission counters, cache
  // lookup, per-stage checkpoints, spans) against an in-memory cube.
  Tracer::Instance().Disable();
  engine::FactInput input{.table = &ds.table};
  auto cube = engine::BuildCure(ds.schema, input, engine::CureOptions());
  CURE_CHECK(cube.ok());
  serve::CubeServerOptions server_options;
  server_options.cache_bytes = 0;
  auto server = serve::CubeServer::Create(cube->get(), server_options);
  CURE_CHECK(server.ok()) << server.status().ToString();
  const schema::NodeIdCodec codec((*cube)->schema());
  const std::vector<schema::NodeId> workload = query::RandomNodeWorkload(
      codec, static_cast<size_t>(QueriesEnv(256)), /*seed=*/23,
      /*unique=*/true);

  PrintSubHeader("serve: " + std::to_string(workload.size()) +
                 " unique node queries per pass");
  const int kPasses = 4;
  double qps_off = 0, qps_on = 0;
  for (const bool trace : {false, true}) {
    if (trace) Tracer::Instance().Enable();
    // Warm-up pass, then timed passes.
    for (schema::NodeId node : workload) {
      serve::QueryRequest request;
      request.node = node;
      CURE_CHECK((*server)->Execute(request).status.ok());
    }
    Stopwatch watch;
    uint64_t queries = 0;
    for (int pass = 0; pass < kPasses; ++pass) {
      for (schema::NodeId node : workload) {
        serve::QueryRequest request;
        request.node = node;
        const serve::QueryResponse response = (*server)->Execute(request);
        CURE_CHECK(response.status.ok()) << response.status.ToString();
        ++queries;
      }
    }
    const double qps = queries / watch.ElapsedSeconds();
    (trace ? qps_on : qps_off) = qps;
    std::printf("%-22s %10.0f qps\n",
                trace ? "tracing enabled" : "tracing disabled", qps);
  }
  if (qps_off > 0) {
    std::printf("enabled-tracing overhead: %+.1f%% qps\n",
                (1.0 - qps_on / qps_off) * 100.0);
  }

  // 4. The per-request profiler's switch: the same workload through the
  // line protocol with and without the `profile=1` token, tracer off as in
  // production. The no-token side is the disarmed path every routed query
  // pays (token scan + one relaxed Tracer::enabled() load); the armed side
  // adds the "% profile" stage-breakdown rendering.
  {
    auto tcp =
        serve::TcpLineServer::Start(server->get(), serve::TcpServerOptions{});
    CURE_CHECK(tcp.ok()) << tcp.status().ToString();
    std::vector<std::string> plain;
    std::vector<std::string> profiled;
    for (schema::NodeId node : workload) {
      const std::string spec = NodeSpec(ds.schema, codec, node);
      plain.push_back("QUERY " + spec);
      profiled.push_back("QUERY " + spec + " profile=1");
    }
    PrintSubHeader("profile token: " + std::to_string(workload.size()) +
                   " unique node queries per pass (tracer off)");
    double qps_plain = 0, qps_profiled = 0;
    for (const bool profile : {false, true}) {
      const std::vector<std::string>& request_lines = profile ? profiled : plain;
      for (const std::string& line : request_lines) {  // warm-up
        CURE_CHECK((*tcp)->HandleLine(line).rfind("OK", 0) == 0);
      }
      Stopwatch watch;
      uint64_t queries = 0;
      for (int pass = 0; pass < kPasses; ++pass) {
        for (const std::string& line : request_lines) {
          const std::string response = (*tcp)->HandleLine(line);
          CURE_CHECK(response.rfind("OK", 0) == 0) << response;
          ++queries;
        }
      }
      const double qps = queries / watch.ElapsedSeconds();
      (profile ? qps_profiled : qps_plain) = qps;
      std::printf("%-22s %10.0f qps\n",
                  profile ? "profile=1" : "no profile token", qps);
    }
    if (qps_plain > 0) {
      std::printf("profile-armed overhead: %+.1f%% qps\n",
                  (1.0 - qps_profiled / qps_plain) * 100.0);
    }
    (*tcp)->Stop();
  }

  // 5. Export the build+serve trace and hold it to the same bar CI does.
  Tracer::Instance().Disable();
  const std::string path = "/tmp/cure_bench_observability_trace.json";
  CURE_CHECK_OK(Tracer::Instance().WriteChromeTrace(path));
  ChromeTraceSummary summary;
  CURE_CHECK_OK(ValidateChromeTraceFile(path, &summary));
  std::printf("\ntrace export: %llu events (%llu spans) across %llu names — "
              "valid Chrome trace JSON\n",
              static_cast<unsigned long long>(summary.total_events),
              static_cast<unsigned long long>(summary.complete_events),
              static_cast<unsigned long long>(summary.names.size()));
  CURE_CHECK(summary.Contains("cure.build.run"));
  CURE_CHECK(summary.Contains("cure.serve.query"));
  CURE_CHECK_OK(storage::RemoveFile(path));
  Tracer::Instance().Reset();

  std::printf(
      "\nShape check: the disabled fast path is a few ns per call site and "
      "disabled-mode build/serve throughput is within noise (<2%%) of an "
      "uninstrumented binary; enabled tracing costs single-digit percent on "
      "the serve path and more on the build path (per-edge spans). The "
      "disarmed profile token costs nothing measurable per request; armed, "
      "it pays only the \"%% profile\" rendering.\n");
  return 0;
}
