// Semantic result cache on analyst drill-down sessions (DESIGN.md §15).
//
// Replays the same deterministic drill-down/narrow/roll-up session traces
// (query::DrillDownSessions) against three configurations of the serving
// layer over one cube:
//
//   cache-off  — every query executes in the engine (the correctness
//                reference: all other configs must reproduce its counts
//                and checksums bit for bit);
//   exact-only — the sharded LRU keyed on the canonical query form, no
//                derivation (--no-semantic);
//   semantic   — exact layer plus containment-driven roll-up derivation
//                from cached descendants.
//
// Reported per config: hit rates (exact / semantic / combined), latency
// p50/p99, and derivation volume. The run aborts if any configuration
// diverges from the reference results, or if the semantic cache fails to
// beat the exact-only cache on combined hit rate and p50 — the two claims
// EXPERIMENTS.md makes for this subsystem.

#include <algorithm>
#include <cinttypes>
#include <vector>

#include "bench/bench_util.h"
#include "gen/random.h"
#include "gen/zipf.h"
#include "query/workload.h"
#include "serve/cube_server.h"
#include "storage/file_io.h"
#include "storage/relation.h"

using namespace cure;         // NOLINT
using namespace cure::bench;  // NOLINT

namespace {

/// Hierarchical Zipf-skewed dataset: three hierarchies plus a flat
/// dimension, SUM + COUNT aggregates — the navigation shape drill-down
/// sessions need.
gen::Dataset MakeSessionDataset(uint64_t tuples, uint64_t seed) {
  gen::Dataset ds;
  ds.name = "drill-zipf";
  std::vector<schema::Dimension> dims;
  dims.push_back(schema::Dimension::Linear("A", {48, 12, 3}));
  dims.push_back(schema::Dimension::Linear("B", {20, 5}));
  dims.push_back(schema::Dimension::Linear("C", {12, 4}));
  dims.push_back(schema::Dimension::Flat("D", 6));
  auto schema = schema::CubeSchema::Create(
      std::move(dims), 1,
      {{schema::AggFn::kSum, 0, "s"}, {schema::AggFn::kCount, 0, "c"}});
  CURE_CHECK(schema.ok()) << schema.status().ToString();
  ds.schema = std::move(schema).value();
  ds.table = schema::FactTable(4, 1);
  gen::Rng rng(seed);
  gen::ZipfSampler za(48, 1.1), zb(20, 0.9), zc(12, 0.8), zd(6, 0.5);
  for (uint64_t t = 0; t < tuples; ++t) {
    const uint32_t row[4] = {za.Sample(&rng), zb.Sample(&rng), zc.Sample(&rng),
                             zd.Sample(&rng)};
    const int64_t m = static_cast<int64_t>(rng.NextRange(1000));
    ds.table.AppendRow(row, &m);
  }
  return ds;
}

struct ReplayResult {
  std::string label;
  std::vector<std::pair<uint64_t, uint64_t>> outcomes;  // (count, checksum)
  uint64_t queries = 0;
  uint64_t exact_hits = 0;
  uint64_t semantic_hits = 0;
  uint64_t rollup_rows = 0;
  uint64_t derived_rows = 0;
  double p50_us = 0;
  double p99_us = 0;
  double total_seconds = 0;

  double combined_hit_rate() const {
    return queries > 0
               ? static_cast<double>(exact_hits + semantic_hits) / queries
               : 0;
  }
};

ReplayResult Replay(const std::string& label, const engine::CureCube* cube,
                    const std::vector<query::DrillSession>& sessions,
                    uint64_t cache_bytes, bool semantic) {
  serve::CubeServerOptions options;
  options.num_threads = 2;
  options.cache_bytes = cache_bytes;
  options.semantic_cache = semantic;
  // The paper's disk-resident setting (identical in every config): engine
  // queries dereference row-ids through a partially cached fact table,
  // derivations scan cached result rows without touching storage.
  options.fact_cache_fraction = 0.25;
  auto server = serve::CubeServer::Create(cube, options);
  CURE_CHECK(server.ok()) << server.status().ToString();

  ReplayResult out;
  out.label = label;
  // Exact samples, not LogHistogram: the p50 claim gate compares configs a
  // few microseconds apart, inside one log bucket.
  std::vector<uint64_t> latency_us;
  const bool debug = EnvInt64("CURE_BENCH_DEBUG", 0) != 0;
  Stopwatch total;
  for (const query::DrillSession& session : sessions) {
    for (const query::DrillStep& step : session) {
      serve::QueryRequest request;
      request.node = step.node;
      request.slices = step.slices;
      Stopwatch watch;
      const serve::QueryResponse response = (*server)->Execute(request);
      latency_us.push_back(watch.ElapsedMicros());
      CURE_CHECK(response.status.ok()) << response.status.ToString();
      if (debug) {
        std::printf("dbg %-10s node=%llu slices=%zu rows=%llu us=%llu hit=%d sem=%d\n",
                    label.c_str(), (unsigned long long)step.node,
                    step.slices.size(), (unsigned long long)response.count,
                    (unsigned long long)watch.ElapsedMicros(),
                    response.cache_hit, response.semantic_hit);
      }
      out.outcomes.emplace_back(response.count, response.checksum);
      ++out.queries;
    }
  }
  out.total_seconds = total.ElapsedSeconds();
  out.exact_hits = (*server)->cache()->stats().hits;
  const serve::SemanticCache::Stats semantic_stats =
      (*server)->semantic_cache()->stats();
  out.semantic_hits = semantic_stats.semantic_hits;
  out.rollup_rows = semantic_stats.rollup_rows;
  out.derived_rows = semantic_stats.derived_rows;
  std::sort(latency_us.begin(), latency_us.end());
  if (!latency_us.empty()) {
    out.p50_us = static_cast<double>(latency_us[latency_us.size() / 2]);
    out.p99_us =
        static_cast<double>(latency_us[latency_us.size() * 99 / 100]);
  }
  return out;
}

void PrintRow(const ReplayResult& r) {
  std::printf("%-12s %8" PRIu64 " %10.1f%% %10" PRIu64 " %10" PRIu64
              " %9.0f %9.0f %9.3f s\n",
              r.label.c_str(), r.queries, 100.0 * r.combined_hit_rate(),
              r.exact_hits, r.semantic_hits, r.p50_us, r.p99_us,
              r.total_seconds);
}

}  // namespace

int main() {
  PrintHeader("Semantic result cache — drill-down session replay");
  const uint64_t divisor = static_cast<uint64_t>(ScaleEnv(4));
  const uint64_t tuples = 800000 / (divisor > 0 ? divisor : 1);
  const size_t steps_per_session = 24;
  const size_t num_queries = static_cast<size_t>(QueriesEnv(768));
  const size_t num_sessions =
      (num_queries + steps_per_session - 1) / steps_per_session;

  gen::Dataset ds = MakeSessionDataset(tuples, /*seed=*/101);
  // Disk-resident fact table and cube store, as in the paper's setting.
  const std::string path = "/tmp/cure_bench_semantic.bin";
  auto rel = storage::Relation::CreateFile(path, ds.table.RecordSize());
  CURE_CHECK(rel.ok()) << rel.status().ToString();
  CURE_CHECK_OK(ds.table.WriteTo(&rel.value()));
  CURE_CHECK_OK(rel->Seal());
  engine::FactInput input{.relation = &rel.value()};
  auto cube = engine::BuildCure(ds.schema, input, engine::CureOptions{});
  CURE_CHECK(cube.ok()) << cube.status().ToString();
  SpillCure(cube->get(), path + ".cure");

  const std::vector<query::DrillSession> sessions =
      query::DrillDownSessions(ds.schema, num_sessions, steps_per_session,
                               /*seed=*/202);

  PrintSubHeader(std::to_string(tuples) + " tuples, " +
                 std::to_string(num_sessions) + " sessions x " +
                 std::to_string(steps_per_session) + " steps");
  constexpr uint64_t kCacheBytes = 64ull << 20;
  const ReplayResult off =
      Replay("cache-off", cube->get(), sessions, 0, false);
  const ReplayResult exact =
      Replay("exact-only", cube->get(), sessions, kCacheBytes, false);
  const ReplayResult semantic =
      Replay("semantic", cube->get(), sessions, kCacheBytes, true);

  std::printf("%-12s %8s %11s %10s %10s %9s %9s %11s\n", "config", "queries",
              "hit-rate", "exact", "semantic", "p50_us", "p99_us", "total");
  PrintRow(off);
  PrintRow(exact);
  PrintRow(semantic);
  std::printf("derivation volume: %" PRIu64 " cached rows scanned -> %" PRIu64
              " derived rows\n",
              semantic.rollup_rows, semantic.derived_rows);

  // Correctness gate: every cached configuration reproduces the engine-only
  // reference bit for bit (count + order-independent checksum, per step).
  CURE_CHECK(exact.outcomes == off.outcomes)
      << "exact-only cache diverged from the engine reference";
  CURE_CHECK(semantic.outcomes == off.outcomes)
      << "semantic cache diverged from the engine reference";

  // Claim gate: the semantic layer must beat the exact-key cache on
  // combined hit rate (strictly) and must not lose on p50.
  CURE_CHECK(semantic.semantic_hits > 0) << "no derivations happened";
  CURE_CHECK(semantic.combined_hit_rate() > exact.combined_hit_rate())
      << "semantic hit rate did not beat exact-only";
  CURE_CHECK(semantic.p50_us <= exact.p50_us)
      << "semantic p50 regressed vs exact-only";

  std::printf(
      "\nShape check: identical results in all three configs; the semantic "
      "config converts engine executions into roll-up derivations, lifting "
      "the hit rate above exact-only and holding or improving p50.\n");
  CURE_CHECK_OK(storage::RemoveFile(path));
  CURE_CHECK_OK(storage::RemoveFile(path + ".cure"));
  return 0;
}
