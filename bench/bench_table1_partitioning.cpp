// Reproduces Table 1: CURE's partitioning efficiency on the SALES example.
//
// Paper setting: SALES with Product organized as barcode -> brand ->
// economic_strength (10,000 -> 1,000 -> 10) and |M| = 1 GB; as |R| grows
// from 10 GB to 1 TB, the feasible partitioning level L drops from 2 to 1,
// the partition count rises, and node N grows — but partitioning always
// remains feasible.
//
// We reproduce the same |R|/|M| ratios at laptop scale (the analytic level
// selection sees exactly the paper's ratios) and additionally *measure* an
// actual partition pass at the smallest ratio.

#include "bench/bench_util.h"
#include "engine/partition.h"
#include "storage/relation.h"

using namespace cure;            // NOLINT
using namespace cure::bench;     // NOLINT

int main() {
  PrintHeader(
      "Table 1 — partitioning efficiency (SALES: barcode 10,000 -> brand "
      "1,000 -> economic_strength 10)");

  // Generate one SALES table; its per-level histograms scale linearly with
  // |R|, so the analytic sweep scales the histogram, exactly like the
  // paper's back-of-envelope table.
  const uint64_t base_rows = 1000000 / ScaleEnv(1);
  gen::Dataset sales = gen::MakeSales(base_rows);
  storage::Relation rel = storage::Relation::Memory(sales.table.RecordSize());
  CURE_CHECK_OK(sales.table.WriteTo(&rel));
  auto hist = engine::ComputeLevelHistograms(rel, sales.schema);
  CURE_CHECK(hist.ok()) << hist.status().ToString();

  // The paper's |R| : |M| ratios — 10, 100, 1000.
  const size_t rec = engine::PartitionRecordSize(sales.schema);
  struct Setting {
    const char* r_label;
    uint64_t ratio;
  };
  const Setting settings[] = {{"10 GB", 10}, {"100 GB", 100}, {"1 TB", 1000}};

  std::printf("\n(analytic sweep at the paper's |R|/|M| ratios; |M| scaled to "
              "keep ratio)\n\n");
  std::printf("%8s %4s %14s %16s %14s %10s\n", "|R|", "L", "#partitions",
              "partition size", "|A0|/|A(L+1)|", "est |N|");
  for (const Setting& s : settings) {
    engine::PartitionOptions options;
    // 20% headroom over the exact ratio: the paper's Table 1 sits exactly at
    // the |M| boundary (10 partitions of 1 GB in 1 GB of memory), which only
    // works for perfectly uniform values.
    options.memory_budget_bytes = base_rows * rec * 12 / (10 * s.ratio);
    options.n_overhead_factor = 1.0;  // Table 1 counts raw |N| bytes.
    auto choice = engine::SelectPartitionLevel(sales.schema, *hist,
                                               sales.table.num_rows(), options);
    if (!choice.ok()) {
      std::printf("%8s  infeasible: %s\n", s.r_label,
                  choice.status().message().c_str());
      continue;
    }
    const schema::Dimension& product = sales.schema.dim(0);
    const uint64_t card_above = choice->level + 1 < product.num_levels()
                                    ? product.cardinality(choice->level + 1)
                                    : 1;
    std::printf("%8s %4d %14llu %16s %14llu %10llu rows\n", s.r_label,
                choice->level,
                static_cast<unsigned long long>(choice->num_partitions),
                FormatBytes(options.memory_budget_bytes).c_str(),
                static_cast<unsigned long long>(product.leaf_cardinality() /
                                                card_above),
                static_cast<unsigned long long>(choice->est_n_rows));
  }

  // A real, measured partition pass at ratio 10.
  PrintSubHeader("measured partition pass at |R|/|M| = 10");
  engine::PartitionOptions options;
  options.memory_budget_bytes = base_rows * rec * 12 / 100;
  options.n_overhead_factor = 1.0;
  options.temp_dir = "/tmp";
  auto choice = engine::SelectPartitionLevel(sales.schema, *hist,
                                             sales.table.num_rows(), options);
  CURE_CHECK(choice.ok()) << choice.status().ToString();
  Stopwatch watch;
  auto outcome = engine::PartitionFact(rel, sales.schema, *choice, *hist, options);
  CURE_CHECK(outcome.ok()) << outcome.status().ToString();
  std::printf(
      "rows=%llu  L=%d  partitions=%llu  max-partition=%llu rows  "
      "|N|=%llu rows (%s)  pass=%.3f s  write=%s\n",
      static_cast<unsigned long long>(sales.table.num_rows()), outcome->level,
      static_cast<unsigned long long>(outcome->partitions.size()),
      static_cast<unsigned long long>(outcome->max_partition_rows),
      static_cast<unsigned long long>(outcome->n_table->num_rows),
      FormatBytes(outcome->n_table->bytes()).c_str(), watch.ElapsedSeconds(),
      FormatBytes(outcome->write_bytes).c_str());
  for (storage::Relation& part : outcome->partitions) {
    const std::string path = part.path();
    part = storage::Relation();
    CURE_CHECK_OK(storage::RemoveFile(path));
  }
  std::printf(
      "\nShape check vs paper: L drops as |R|/|M| grows, partition count "
      "rises, partitioning never becomes infeasible.\n");
  return 0;
}
