// Reproduces Figures 23 & 24: hierarchical cube construction time and
// storage space on APB-1 at densities 0.4, 4 and 40, for the CURE
// variants CURE, CURE+, CURE_DR, CURE_DR+.
//
// Paper scale: 4.96M / 49.6M / 496M rows with a 256 MB budget (the densest
// run took 3h50m). Default here: rows scaled by 1/100 with the memory
// budget shrunk proportionally, so the highest density still exceeds the
// budget and exercises the full external path (partitioning level
// selection, sound partitions, node N) exactly as at full scale.

#include "bench/bench_util.h"
#include "storage/file_io.h"
#include "storage/relation.h"

using namespace cure;         // NOLINT
using namespace cure::bench;  // NOLINT

int main() {
  PrintHeader(
      "Figures 23-24 — APB-1 hierarchical cubes: construction time & "
      "storage (CURE, CURE+, CURE_DR, CURE_DR+)");
  const uint64_t scale = static_cast<uint64_t>(ScaleEnv(200));
  // Paper budget: 256 MB for 12 GB of data. The APB hierarchy cardinalities
  // do not scale down with the row count, so a strictly proportional budget
  // would make node N (whose size is bounded by the fixed |A_{L+1}| x ...
  // key space) infeasible at any level; 3x headroom keeps the |R|/|M| ratio
  // ~16:1 — still deeply external — while preserving the paper's behaviour.
  const uint64_t budget = MemBudgetEnv(3 * (256ull << 20) / scale);
  std::printf("\nscale divisor %llu, memory budget %s\n",
              static_cast<unsigned long long>(scale),
              FormatBytes(budget).c_str());

  for (double density : {0.4, 4.0, 40.0}) {
    gen::ApbSpec spec;
    spec.density = density;
    spec.scale_divisor = scale;
    gen::Dataset apb = gen::MakeApb(spec);
    // Fact table on disk, as in the paper's external setting.
    const std::string path = "/tmp/cure_bench_apb_fact.bin";
    auto rel = storage::Relation::CreateFile(path, apb.table.RecordSize());
    CURE_CHECK(rel.ok());
    CURE_CHECK_OK(apb.table.WriteTo(&rel.value()));
    CURE_CHECK_OK(rel->Seal());

    PrintSubHeader("density " + std::to_string(density) + ": " +
                   std::to_string(apb.table.num_rows()) + " rows, " +
                   FormatBytes(rel->bytes()) + " on disk");
    engine::FactInput input{.relation = &rel.value()};

    std::vector<BuildRow> rows;
    for (const bool dr : {false, true}) {
      for (const bool plus : {false, true}) {
        engine::CureOptions options;
        options.memory_budget_bytes = budget;
        options.dims_in_nt = dr;
        options.temp_dir = "/tmp";
        const std::string label =
            std::string("CURE") + (dr ? "_DR" : "") + (plus ? "+" : "");
        CureBuildResult result =
            BuildCureVariant(label, apb.schema, input, options, plus);
        rows.push_back(result.row);
      }
    }
    PrintBuildRows(rows);
    CURE_CHECK_OK(storage::RemoveFile(path));
  }

  // Density-parity variant: at scaled row counts the standard schema is far
  // sparser than the paper's 78%-full density-40 run, hiding the headline
  // "cube smaller than the fact table" effect. The mini schema shrinks the
  // cardinalities so the fill fraction matches the paper's.
  PrintSubHeader("density-parity mini APB (fill fraction matches the paper)");
  {
    gen::ApbSpec spec;
    spec.density = 40;
    spec.scale_divisor = scale;
    gen::Dataset mini = gen::MakeApbMini(spec);
    engine::FactInput input{.table = &mini.table};
    std::printf("%llu rows over %s of key space (%.0f%% full), fact table %s\n",
                static_cast<unsigned long long>(mini.table.num_rows()),
                "325*64*17*9 combos",
                100.0 * static_cast<double>(mini.table.num_rows()) /
                    (325.0 * 64 * 17 * 9),
                FormatBytes(mini.table.bytes()).c_str());
    std::vector<BuildRow> mini_rows;
    mini_rows.push_back(
        BuildCureVariant("CURE", mini.schema, input, {}, false).row);
    mini_rows.push_back(
        BuildCureVariant("CURE+", mini.schema, input, {}, true).row);
    PrintBuildRows(mini_rows);
    std::printf("(compare cube size to the %s fact table)\n",
                FormatBytes(mini.table.bytes()).c_str());
  }

  std::printf(
      "\nShape check vs paper: all variants scale near-linearly in the "
      "number of tuples across two orders of magnitude of density; CURE+ "
      "yields the smallest cube; CURE_DR trades extra space for query "
      "speed; the densest run is external (partitioned).\n");
  return 0;
}
