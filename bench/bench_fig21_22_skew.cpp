// Reproduces Figures 21 & 22: skew (zipf factor Z) vs construction time and
// storage space. Paper setting: D = 8, T = 500,000, C_i = T/i, Z in [0, 2].
//
// Expected shapes (paper Sec. 7): counting sort keeps BUC-based methods
// efficient under skew; BUC's time *improves* at high Z thanks to smaller
// output; cube sizes dip at low Z (many TTs), rise at moderate Z (dense
// areas), and fall again at very high Z (few distinct groups); at Z = 2
// BUC's and BU-BST's sizes converge (no TTs remain) while CURE still wins
// through dimensional-redundancy removal and CATs.

#include "bench/bench_util.h"

using namespace cure;         // NOLINT
using namespace cure::bench;  // NOLINT

int main() {
  PrintHeader("Figures 21-22 — skew vs construction time / storage "
              "(D=8, Ci=T/i)");
  const uint64_t tuples = 50000 / static_cast<uint64_t>(ScaleEnv(1));
  std::printf("\nT=%llu\n", static_cast<unsigned long long>(tuples));
  std::printf("%5s | %9s %9s %9s %9s | %12s %12s %12s %12s\n", "Z", "BUC(s)",
              "BU-BST(s)", "CURE(s)", "CURE+(s)", "BUC(B)", "BU-BST(B)",
              "CURE(B)", "CURE+(B)");
  for (double z : {0.0, 0.4, 0.8, 1.2, 1.6, 2.0}) {
    gen::SyntheticSpec spec;
    spec.num_dims = 8;
    spec.num_tuples = tuples;
    spec.zipf = z;
    spec.seed = 2122;
    gen::Dataset ds = gen::MakeSynthetic(spec);
    engine::FactInput input{.table = &ds.table};

    auto buc = engine::BuildBuc(ds.schema, ds.table, {});
    auto bubst = engine::BuildBubst(ds.schema, ds.table, {});
    CURE_CHECK(buc.ok() && bubst.ok());
    CureBuildResult cure = BuildCureVariant("CURE", ds.schema, input, {}, false);
    CureBuildResult plus = BuildCureVariant("CURE+", ds.schema, input, {}, true);

    std::printf("%5.1f | %9.2f %9.2f %9.2f %9.2f | %12s %12s %12s %12s\n", z,
                (*buc)->stats().build_seconds, (*bubst)->stats().build_seconds,
                cure.row.seconds, plus.row.seconds,
                FormatBytes((*buc)->store().TotalBytes()).c_str(),
                FormatBytes((*bubst)->TotalBytes()).c_str(),
                FormatBytes(cure.row.bytes).c_str(),
                FormatBytes(plus.row.bytes).c_str());
  }
  std::printf(
      "\nShape check vs paper: BUC's time improves at high Z (smaller "
      "output); CURE/BU-BST sizes dip-rise-dip across Z; at Z=2 BUC's and "
      "BU-BST's sizes converge while CURE stays smaller.\n");
  return 0;
}
