// Reproduces Figures 14, 15, 16: construction time, storage space, and
// average query response time of BUC, BU-BST, CURE, CURE+ on the two
// real-world datasets (CovType, Sep85L — cardinality/skew-matched proxies,
// see DESIGN.md) for flat cubes.
//
// Default scale: 1/32 of the published row counts (CURE_BENCH_SCALE
// multiplies the divisor; set CURE_BENCH_SCALE=1 with row divisor 32 fixed
// inside, or lower for bigger runs).

#include "bench/bench_util.h"

using namespace cure;         // NOLINT
using namespace cure::bench;  // NOLINT

namespace {

void RunDataset(const gen::Dataset& ds, size_t num_queries) {
  PrintSubHeader(ds.name + ": " + std::to_string(ds.table.num_rows()) +
                 " rows, " + std::to_string(ds.schema.num_dims()) +
                 " dims (Fig. 14/15: construction & storage)");
  engine::FactInput input{.table = &ds.table};
  const std::string tmp = "/tmp/cure_bench_fig14_" + ds.name;

  // Construction time includes writing the materialized cube to disk;
  // queries below then read the disk-resident cubes, as in the paper.
  std::vector<BuildRow> rows;

  // BUC.
  auto buc = engine::BuildBuc(ds.schema, ds.table, {});
  CURE_CHECK(buc.ok()) << buc.status().ToString();
  Stopwatch watch;
  CURE_CHECK_OK((*buc)->SpillStoreToDisk(tmp + "_buc.bin"));
  rows.push_back({"BUC", (*buc)->stats().build_seconds + watch.ElapsedSeconds(),
                  (*buc)->store().TotalBytes(), (*buc)->stats().plain, false,
                  "no redundancy removal"});

  // BU-BST.
  auto bubst = engine::BuildBubst(ds.schema, ds.table, {});
  CURE_CHECK(bubst.ok()) << bubst.status().ToString();
  watch.Restart();
  CURE_CHECK_OK((*bubst)->SpillToDisk(tmp + "_bubst.bin"));
  rows.push_back({"BU-BST",
                  (*bubst)->stats().build_seconds + watch.ElapsedSeconds(),
                  (*bubst)->TotalBytes(),
                  (*bubst)->stats().plain + (*bubst)->stats().tt, false,
                  "monolithic condensed"});

  // CURE and CURE+.
  CureBuildResult cure_build =
      BuildCureVariant("CURE", ds.schema, input, {}, /*post_process=*/false);
  cure_build.row.seconds += SpillCure(cure_build.cube.get(), tmp + "_cure.bin");
  rows.push_back(cure_build.row);
  CureBuildResult cure_plus =
      BuildCureVariant("CURE+", ds.schema, input, {}, /*post_process=*/true);
  cure_plus.row.seconds += SpillCure(cure_plus.cube.get(), tmp + "_plus.bin");
  rows.push_back(cure_plus.row);

  PrintBuildRows(rows);

  // Fig. 16: average QRT over random node queries (no selection).
  PrintSubHeader(ds.name + " (Fig. 16: average query response time, " +
                 std::to_string(num_queries) + " random node queries)");
  const schema::NodeIdCodec codec(cure_build.cube->schema());
  const std::vector<schema::NodeId> workload =
      query::RandomNodeWorkload(codec, num_queries, /*seed=*/1216);

  auto cure_engine = query::CureQueryEngine::Create(cure_build.cube.get(), 1.0);
  auto cure_plus_engine = query::CureQueryEngine::Create(cure_plus.cube.get(), 1.0);
  CURE_CHECK(cure_engine.ok() && cure_plus_engine.ok());
  query::BucQueryEngine buc_engine(buc->get());
  query::BubstQueryEngine bubst_engine(bubst->get());

  struct QrtRow {
    const char* label;
    query::QrtStats stats;
  };
  std::vector<QrtRow> qrt;
  qrt.push_back({"BUC", MeasureEngineQrt(workload,
                                         [&](schema::NodeId id,
                                             query::ResultSink* sink) {
                                           return buc_engine.QueryNode(id, sink);
                                         })});
  qrt.push_back({"BU-BST",
                 MeasureEngineQrt(workload, [&](schema::NodeId id,
                                                query::ResultSink* sink) {
                   return bubst_engine.QueryNode(id, sink);
                 })});
  qrt.push_back({"CURE", MeasureEngineQrt(workload,
                                          [&](schema::NodeId id,
                                              query::ResultSink* sink) {
                                            return (*cure_engine)->QueryNode(id, sink);
                                          })});
  qrt.push_back({"CURE+",
                 MeasureEngineQrt(workload, [&](schema::NodeId id,
                                                query::ResultSink* sink) {
                   return (*cure_plus_engine)->QueryNode(id, sink);
                 })});
  std::printf("%-14s %14s %16s\n", "method", "avg QRT", "total tuples");
  for (const QrtRow& row : qrt) {
    std::printf("%-14s %14s %16llu\n", row.label,
                FormatSeconds(row.stats.avg_seconds).c_str(),
                static_cast<unsigned long long>(row.stats.total_tuples));
  }
  for (const char* suffix : {"_buc.bin", "_bubst.bin", "_cure.bin", "_plus.bin"}) {
    CURE_CHECK_OK(storage::RemoveFile(tmp + suffix));
  }
}

}  // namespace

int main() {
  PrintHeader(
      "Figures 14-16 — real datasets (CovType & Sep85L proxies): "
      "construction time, storage space, average QRT");
  const uint64_t divisor = 32 * static_cast<uint64_t>(ScaleEnv(1));
  const size_t num_queries = static_cast<size_t>(QueriesEnv(200));

  RunDataset(gen::MakeCovTypeProxy(divisor), num_queries);
  RunDataset(gen::MakeSep85LProxy(divisor), num_queries);

  std::printf(
      "\nShape check vs paper: CURE cube is ~an order of magnitude smaller "
      "than BU-BST (which is smaller than BUC); BU-BST queries are orders of "
      "magnitude slower (monolithic scan); CURE is comparable to or faster "
      "than BUC in construction, possibly slightly slower on datasets with "
      "dense areas (signature sorting), and CURE+ queries are fastest.\n");
  return 0;
}
