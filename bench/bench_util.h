#ifndef CURE_BENCH_BENCH_UTIL_H_
#define CURE_BENCH_BENCH_UTIL_H_

// Shared helpers for the figure/table reproduction benches. Every bench
// binary runs stand-alone with no arguments and prints the series of one or
// more of the paper's figures; the serving/cluster benches additionally
// accept `--json-out=<file>` to dump their measurements as a flat JSON
// baseline (committed as BENCH_*.json, diffed by CI). Environment knobs:
//   CURE_BENCH_SCALE   — divides dataset sizes (default per bench; 1 =
//                        the paper's published sizes where feasible)
//   CURE_BENCH_QUERIES — number of random node queries for QRT figures
//   CURE_MEM_BUDGET_MB — engine memory budget in MB (default per bench)

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/env.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/stopwatch.h"
#include "engine/bubst.h"
#include "engine/buc.h"
#include "engine/cure.h"
#include "gen/datasets.h"
#include "query/node_query.h"
#include "query/workload.h"

namespace cure {
namespace bench {

inline void PrintHeader(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void PrintSubHeader(const std::string& title) {
  std::printf("\n--- %s ---\n", title.c_str());
}

/// One measured cube build.
struct BuildRow {
  std::string label;
  double seconds = 0;
  uint64_t bytes = 0;
  uint64_t tuples = 0;
  bool skipped = false;
  std::string note;
};

inline void PrintBuildRows(const std::vector<BuildRow>& rows) {
  std::printf("%-14s %14s %14s %14s  %s\n", "method", "time", "size", "tuples",
              "note");
  for (const BuildRow& row : rows) {
    if (row.skipped) {
      std::printf("%-14s %14s %14s %14s  %s\n", row.label.c_str(), "-", "-", "-",
                  row.note.c_str());
    } else {
      std::printf("%-14s %12.3f s %14s %14llu  %s\n", row.label.c_str(),
                  row.seconds, FormatBytes(row.bytes).c_str(),
                  static_cast<unsigned long long>(row.tuples), row.note.c_str());
    }
  }
}

/// Builds CURE (and optionally applies the CURE+ post-processing) and
/// returns the cube plus a BuildRow. Post-processing time is included in
/// the reported time for "+" variants, as in the paper.
struct CureBuildResult {
  std::unique_ptr<engine::CureCube> cube;
  BuildRow row;
};

inline CureBuildResult BuildCureVariant(const std::string& label,
                                        const schema::CubeSchema& schema,
                                        const engine::FactInput& input,
                                        engine::CureOptions options,
                                        bool post_process) {
  CureBuildResult result;
  result.row.label = label;
  auto cube = engine::BuildCure(schema, input, options);
  CURE_CHECK(cube.ok()) << label << ": " << cube.status().ToString();
  if (post_process) {
    CURE_CHECK_OK(engine::CurePostProcess(cube->get()));
  }
  result.cube = std::move(cube).value();
  const engine::BuildStats& stats = result.cube->stats();
  result.row.seconds = stats.build_seconds + stats.postprocess_seconds;
  result.row.bytes = result.cube->TotalBytes();
  result.row.tuples = stats.tt + stats.nt + stats.cat;
  if (stats.external) {
    char note[128];
    std::snprintf(note, sizeof(note), "external: L=%d, %llu partitions, |N|=%llu",
                  stats.partition_level,
                  static_cast<unsigned long long>(stats.num_partitions),
                  static_cast<unsigned long long>(stats.n_rows));
    result.row.note = note;
  }
  return result;
}

/// Average QRT of a query engine over a random node workload. When
/// `latencies` is non-null, per-query micros are also recorded there (use a
/// MetricsRegistry histogram so the bench publishes the same distribution
/// the serving layer snapshots).
inline query::QrtStats MeasureEngineQrt(
    const std::vector<schema::NodeId>& workload,
    const std::function<Status(schema::NodeId, query::ResultSink*)>& fn,
    LogHistogram* latencies = nullptr) {
  Result<query::QrtStats> stats = query::MeasureQrt(workload, fn, latencies);
  CURE_CHECK(stats.ok()) << stats.status().ToString();
  return std::move(stats).value();
}

/// Prints a latency histogram in the exact `<name>_{count,avg_us,p50_us,
/// p95_us,p99_us,max_us}` shape the serving layer's STATS verb uses —
/// benches and serve report percentiles through one renderer.
inline void PrintLatencyHistogram(const std::string& name,
                                  const LogHistogram& histogram) {
  std::string text;
  AppendHistogramText(name, histogram, &text);
  std::fputs(text.c_str(), stdout);
}

/// Spills a CURE cube's store to a packed file (timed); queries then read
/// node relations from disk, as in the paper's setting.
inline double SpillCure(engine::CureCube* cube, const std::string& path) {
  Stopwatch watch;
  CURE_CHECK_OK(cube->SpillStoreToDisk(path));
  return watch.ElapsedSeconds();
}

/// Accumulates bench measurements for `--json-out=<file>`: one flat JSON
/// document {"bench": <name>, "series": [{"name": ..., "<metric>": N, ...}]}
/// so baselines can be committed (BENCH_*.json) and diffed mechanically.
class JsonReport {
 public:
  explicit JsonReport(std::string bench) : bench_(std::move(bench)) {}

  void BeginSeries(const std::string& name) { series_.push_back({name, {}}); }

  /// Adds a metric to the series opened by the last BeginSeries call.
  void Add(const std::string& metric, double value) {
    CURE_CHECK(!series_.empty()) << "Add() before BeginSeries()";
    series_.back().metrics.emplace_back(metric, value);
  }

  std::string Render() const {
    std::string out = "{\n  \"bench\": \"" + bench_ + "\",\n  \"series\": [";
    for (size_t i = 0; i < series_.size(); ++i) {
      out += i == 0 ? "\n" : ",\n";
      out += "    {\"name\": \"" + series_[i].name + "\"";
      for (const auto& metric : series_[i].metrics) {
        char value[64];
        std::snprintf(value, sizeof(value), "%.6g", metric.second);
        out += ", \"" + metric.first + "\": " + value;
      }
      out += "}";
    }
    out += "\n  ]\n}\n";
    return out;
  }

  /// Writes the report; exits nonzero on I/O failure so CI catches it.
  void WriteOrDie(const std::string& path) const {
    std::FILE* file = std::fopen(path.c_str(), "w");
    CURE_CHECK(file != nullptr) << "cannot open " << path;
    const std::string text = Render();
    CURE_CHECK(std::fwrite(text.data(), 1, text.size(), file) == text.size())
        << "short write to " << path;
    CURE_CHECK(std::fclose(file) == 0) << "close failed for " << path;
    std::printf("\njson baseline written to %s\n", path.c_str());
  }

 private:
  struct Series {
    std::string name;
    std::vector<std::pair<std::string, double>> metrics;
  };
  std::string bench_;
  std::vector<Series> series_;
};

/// Parses the one flag benches accept. Returns the `--json-out=` path ("" if
/// absent); any other argument prints usage and exits, keeping the benches'
/// no-surprise CLI contract.
inline std::string ParseJsonOutArg(int argc, char** argv) {
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string kFlag = "--json-out=";
    if (arg.rfind(kFlag, 0) == 0 && arg.size() > kFlag.size()) {
      path = arg.substr(kFlag.size());
    } else {
      std::fprintf(stderr, "usage: %s [--json-out=<file>]\n", argv[0]);
      std::exit(2);
    }
  }
  return path;
}

inline int64_t ScaleEnv(int64_t def) { return EnvInt64("CURE_BENCH_SCALE", def); }

inline int64_t QueriesEnv(int64_t def) {
  return EnvInt64("CURE_BENCH_QUERIES", def);
}

inline uint64_t MemBudgetEnv(uint64_t def_bytes) {
  const int64_t mb = EnvInt64("CURE_MEM_BUDGET_MB", 0);
  return mb > 0 ? static_cast<uint64_t>(mb) << 20 : def_bytes;
}

}  // namespace bench
}  // namespace cure

#endif  // CURE_BENCH_BENCH_UTIL_H_
