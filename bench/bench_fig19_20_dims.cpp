// Reproduces Figures 19 & 20: dimensionality vs construction time and
// storage space on synthetic data (T tuples, Z = 0.8, C_i = T/i).
//
// Paper scale: T = 500,000, D = 8..28. Default here: T = 20,000 and
// D = 8..20 (CURE_BENCH_SCALE divides T; CURE_BENCH_MAX_DIMS overrides the
// sweep end). BUC materializes every node in full — without TT pruning its
// output explodes combinatorially, so it is only run up to
// CURE_BENCH_BUC_MAX_DIMS (default 12) and reported as "exceeds" beyond,
// matching the paper's clipped BUC curves.

#include "bench/bench_util.h"

using namespace cure;         // NOLINT
using namespace cure::bench;  // NOLINT

int main() {
  PrintHeader(
      "Figures 19-20 — dimensionality vs construction time / storage "
      "(T tuples, Z=0.8, Ci=T/i)");
  const uint64_t tuples = 20000 / static_cast<uint64_t>(ScaleEnv(1));
  const int max_dims = static_cast<int>(EnvInt64("CURE_BENCH_MAX_DIMS", 20));
  const int buc_max_dims = static_cast<int>(EnvInt64("CURE_BENCH_BUC_MAX_DIMS", 12));

  std::printf("\nT=%llu\n", static_cast<unsigned long long>(tuples));
  std::printf("%4s | %10s %10s %10s %10s | %12s %12s %12s %12s | %10s\n", "D",
              "BUC(s)", "BU-BST(s)", "CURE(s)", "CURE+(s)", "BUC(B)",
              "BU-BST(B)", "CURE(B)", "CURE+(B)", "relations");
  for (int d = 8; d <= max_dims; d += 4) {
    gen::SyntheticSpec spec;
    spec.num_dims = d;
    spec.num_tuples = tuples;
    spec.zipf = 0.8;
    spec.seed = 1920 + d;
    gen::Dataset ds = gen::MakeSynthetic(spec);
    engine::FactInput input{.table = &ds.table};

    std::string buc_time = "exceeds", buc_size = "exceeds";
    if (d <= buc_max_dims) {
      auto buc = engine::BuildBuc(ds.schema, ds.table, {});
      CURE_CHECK(buc.ok());
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.2f", (*buc)->stats().build_seconds);
      buc_time = buf;
      buc_size = FormatBytes((*buc)->store().TotalBytes());
    }
    auto bubst = engine::BuildBubst(ds.schema, ds.table, {});
    CURE_CHECK(bubst.ok());
    CureBuildResult cure = BuildCureVariant("CURE", ds.schema, input, {}, false);
    CureBuildResult plus = BuildCureVariant("CURE+", ds.schema, input, {}, true);

    std::printf("%4d | %10s %10.2f %10.2f %10.2f | %12s %12s %12s %12s | %10llu\n",
                d, buc_time.c_str(), (*bubst)->stats().build_seconds,
                cure.row.seconds, plus.row.seconds, buc_size.c_str(),
                FormatBytes((*bubst)->TotalBytes()).c_str(),
                FormatBytes(cure.row.bytes).c_str(),
                FormatBytes(plus.row.bytes).c_str(),
                static_cast<unsigned long long>(cure.cube->store().NumRelations()));
  }
  std::printf(
      "\nShape check vs paper: CURE/CURE+ smallest at every D (BUC exceeds "
      "the chart); CURE is close to BU-BST in time at moderate D and loses "
      "at very high D (relation-per-node overhead vs one monolithic "
      "relation); the number of CURE relations stays orders of magnitude "
      "below the theoretical 3*2^D because TT pruning empties most nodes.\n");
  return 0;
}
