// Live maintenance: refresh latency (ApplyDelta vs staged rebuild) across
// delta sizes, and query latency during refreshes vs steady state.
//
// Part 1 opens a LiveCube over the same 3-dim hierarchical base that
// bench_incremental uses (so the refresh path's overhead is directly
// comparable to raw ApplyDelta), appends deltas of increasing size, and
// times Flush() down both arbitration paths (the --no-delta equivalent
// forces the staged rebuild). Expected shape: ApplyDelta has a fixed
// probing cost — it scans node relations — so small deltas refresh ~2x
// faster than a rebuild and the advantage decays as the delta grows.
//
// Part 2 runs reader threads against a live CubeServer and compares their
// client-side latency percentiles between a quiet phase and a phase with
// continuous append+flush cycles — the zero-downtime claim in numbers: the
// refresh happens on the standby replica, so p95 should move little.

#include <atomic>
#include <thread>

#include "bench/bench_util.h"
#include "gen/random.h"
#include "maintain/live_cube.h"
#include "serve/cube_server.h"

using namespace cure;         // NOLINT
using namespace cure::bench;  // NOLINT

namespace {

constexpr const char* kWalPath = "/tmp/cure_bench_refresh.wal";

/// The bench_incremental dataset: 3 hierarchical dims, skew-free uniform
/// rows — the shape where ApplyDelta's crossover behaviour is established.
gen::Dataset MakeHierDataset(uint64_t rows) {
  gen::Dataset ds;
  ds.name = "hier3d";
  std::vector<schema::Dimension> dims;
  dims.push_back(schema::Dimension::Linear("A", {3000, 150, 10}));
  dims.push_back(schema::Dimension::Linear("B", {400, 25}));
  dims.push_back(schema::Dimension::Flat("C", 15));
  auto schema = schema::CubeSchema::Create(
      std::move(dims), 1,
      {{schema::AggFn::kSum, 0, "s"}, {schema::AggFn::kCount, 0, "c"}});
  CURE_CHECK(schema.ok());
  ds.schema = std::move(schema).value();
  ds.table = schema::FactTable(3, 1);
  gen::Rng rng(42);
  for (uint64_t i = 0; i < rows; ++i) {
    const uint32_t row[3] = {static_cast<uint32_t>(rng.NextRange(3000)),
                             static_cast<uint32_t>(rng.NextRange(400)),
                             static_cast<uint32_t>(rng.NextRange(15))};
    const int64_t m = static_cast<int64_t>(rng.NextRange(100));
    ds.table.AppendRow(row, &m);
  }
  return ds;
}

maintain::RowBatch MakeBatch(const schema::CubeSchema& schema, uint64_t rows,
                             uint64_t seed) {
  maintain::RowBatch batch(schema.num_dims(), schema.num_raw_measures());
  gen::Rng rng(seed);
  std::vector<uint32_t> dims(schema.num_dims());
  std::vector<int64_t> measures(schema.num_raw_measures());
  for (uint64_t r = 0; r < rows; ++r) {
    for (int d = 0; d < schema.num_dims(); ++d) {
      dims[d] = static_cast<uint32_t>(
          rng.NextRange(schema.dim(d).leaf_cardinality()));
    }
    for (int m = 0; m < schema.num_raw_measures(); ++m) {
      measures[m] = static_cast<int64_t>(rng.NextRange(100));
    }
    batch.Add(dims.data(), measures.data());
  }
  return batch;
}

Result<std::unique_ptr<maintain::LiveCube>> OpenLive(const gen::Dataset& ds,
                                                     bool allow_delta) {
  std::remove(kWalPath);
  maintain::MaintainOptions options;
  options.wal_path = kWalPath;
  options.refresh_rows = ~0ull;  // Manual Flush() only.
  options.refresh_bytes = ~0ull;
  options.allow_delta = allow_delta;
  schema::FactTable base = ds.table;  // The LiveCube owns its copy.
  return maintain::LiveCube::Open(ds.schema, std::move(base), options);
}

void RunRefreshLatency(const gen::Dataset& ds) {
  const uint64_t base_rows = ds.table.num_rows();
  PrintSubHeader(ds.name + " — refresh latency, delta vs staged rebuild (base " +
                 std::to_string(base_rows) + " rows)");
  std::printf("%-18s %12s %12s %10s\n", "delta", "ApplyDelta", "rebuild",
              "speedup");

  for (const double fraction : {0.001, 0.01, 0.05}) {
    const uint64_t delta_rows =
        std::max<uint64_t>(1, static_cast<uint64_t>(base_rows * fraction));

    // Delta path: one warm-up flush materializes the standby replica (that
    // first refresh always rebuilds), then the measured flush runs
    // ApplyDelta in steady state.
    double delta_seconds = 0;
    {
      auto live = OpenLive(ds, /*allow_delta=*/true);
      CURE_CHECK(live.ok()) << live.status().ToString();
      CURE_CHECK_OK((*live)->Append(MakeBatch(ds.schema, 1, 7000)));
      auto warmup = (*live)->Flush();
      CURE_CHECK(warmup.ok() && !warmup->used_delta);
      CURE_CHECK_OK((*live)->Append(MakeBatch(ds.schema, delta_rows, 7001)));
      auto stats = (*live)->Flush();
      CURE_CHECK(stats.ok()) << stats.status().ToString();
      CURE_CHECK(stats->used_delta) << stats->fallback_reason;
      delta_seconds = stats->seconds;
    }

    // Rebuild path: the same delta with arbitration forced to the staged
    // rebuild pipeline (what `cure_serve --live --no-delta` does).
    double rebuild_seconds = 0;
    {
      auto live = OpenLive(ds, /*allow_delta=*/false);
      CURE_CHECK(live.ok()) << live.status().ToString();
      CURE_CHECK_OK((*live)->Append(MakeBatch(ds.schema, delta_rows, 7001)));
      auto stats = (*live)->Flush();
      CURE_CHECK(stats.ok() && !stats->used_delta);
      rebuild_seconds = stats->seconds;
    }

    char label[64];
    std::snprintf(label, sizeof(label), "%llu (%.1f%%)",
                  static_cast<unsigned long long>(delta_rows),
                  fraction * 100.0);
    std::printf("%-18s %12s %12s %9.1fx\n", label,
                FormatSeconds(delta_seconds).c_str(),
                FormatSeconds(rebuild_seconds).c_str(),
                rebuild_seconds / delta_seconds);
  }
}

struct PhaseResult {
  LogHistogram::Snapshot latency;
  uint64_t queries = 0;
  uint64_t refreshes = 0;
};

/// Runs `readers` threads of random-node queries for `seconds`; when
/// `churn` is set, the main thread cycles append+flush the whole time.
PhaseResult RunPhase(serve::CubeServer* server, const gen::Dataset& ds,
                     const std::vector<schema::NodeId>& workload, int readers,
                     double seconds, bool churn, uint64_t churn_rows) {
  PhaseResult result;
  LogHistogram latency;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> queries{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < readers; ++t) {
    threads.emplace_back([&, t] {
      gen::Rng rng(900 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        serve::QueryRequest request;
        request.node = workload[rng.NextRange(workload.size())];
        Stopwatch watch;
        serve::QueryResponse response = server->Execute(request);
        CURE_CHECK(response.status.ok()) << response.status.ToString();
        latency.Record(watch.ElapsedMicros());
        queries.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  Stopwatch phase;
  uint64_t seed = 8000;
  while (phase.ElapsedSeconds() < seconds) {
    if (churn) {
      CURE_CHECK_OK(server->Append(MakeBatch(ds.schema, churn_rows, seed++)));
      auto stats = server->Flush();
      CURE_CHECK(stats.ok()) << stats.status().ToString();
      if (stats->refreshed) ++result.refreshes;
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  stop.store(true);
  for (std::thread& t : threads) t.join();
  result.latency = latency.TakeSnapshot();
  result.queries = queries.load();
  return result;
}

void RunQueryLatencyUnderRefresh(const gen::Dataset& ds, int readers,
                                 size_t num_queries) {
  auto live = OpenLive(ds, /*allow_delta=*/true);
  CURE_CHECK(live.ok()) << live.status().ToString();
  serve::CubeServerOptions options;
  options.num_threads = 4;
  options.cache_bytes = 0;  // Uncached: measure engine latency, not hits.
  auto server = serve::CubeServer::Create(live->get(), options);
  CURE_CHECK(server.ok()) << server.status().ToString();

  const schema::NodeIdCodec& codec = (*live)->codec();
  const std::vector<schema::NodeId> workload =
      query::RandomNodeWorkload(codec, num_queries, /*seed=*/23,
                                /*unique=*/true);
  const uint64_t churn_rows =
      std::max<uint64_t>(1, ds.table.num_rows() / 100);  // 1% per cycle

  PrintSubHeader(ds.name + " — query latency during refresh vs steady state (" +
                 std::to_string(readers) + " readers, uncached)");
  std::printf("%-22s %10s %10s %10s %10s %10s %10s\n", "phase", "queries",
              "p50", "p95", "p99", "max", "refreshes");
  const double phase_seconds = 1.5;
  for (const bool churn : {false, true}) {
    const PhaseResult r = RunPhase(server->get(), ds, workload, readers,
                                   phase_seconds, churn, churn_rows);
    std::printf("%-22s %10llu %10s %10s %10s %10s %10llu\n",
                churn ? "append+flush churn" : "steady state",
                static_cast<unsigned long long>(r.queries),
                FormatSeconds(r.latency.p50 * 1e-6).c_str(),
                FormatSeconds(r.latency.p95 * 1e-6).c_str(),
                FormatSeconds(r.latency.p99 * 1e-6).c_str(),
                FormatSeconds(r.latency.max * 1e-6).c_str(),
                static_cast<unsigned long long>(r.refreshes));
  }
}

}  // namespace

int main() {
  PrintHeader("Live maintenance — refresh latency and query impact");
  const gen::Dataset ds =
      MakeHierDataset(200000 / static_cast<uint64_t>(ScaleEnv(1)));
  RunRefreshLatency(ds);
  RunQueryLatencyUnderRefresh(ds, /*readers=*/4,
                              static_cast<size_t>(QueriesEnv(100)));
  std::remove(kWalPath);
  std::printf(
      "\nShape check: ApplyDelta's fixed probing cost means small deltas "
      "refresh ~2x faster than the staged rebuild, with the advantage "
      "decaying toward (and past) the crossover as the delta grows; and "
      "because refreshes build on the standby replica and swap atomically, "
      "reader p95 in the churn phase stays close to steady state.\n");
  return 0;
}
