// Ablation of Sec. 3.1: the tall execution plan P3 (CURE's choice) vs the
// short plan P2 (the straightforward hierarchical extension of BUC).
//
// P3 refines hierarchy levels via dashed edges, re-sorting ever smaller
// segments; P2 introduces each level from scratch via solid edges, paying
// full-size sorts repeatedly. Both produce the same cube contents, so the
// construction-time gap isolates the sort-sharing benefit — the paper's
// argument for "the taller the better".

#include "bench/bench_util.h"
#include "gen/random.h"

using namespace cure;         // NOLINT
using namespace cure::bench;  // NOLINT

namespace {

void RunDataset(const std::string& label, const gen::Dataset& ds) {
  engine::FactInput input{.table = &ds.table};
  PrintSubHeader(label + ": " + std::to_string(ds.table.num_rows()) + " rows");
  std::printf("%-12s %-12s %12s %14s %14s %14s\n", "plan", "sort", "time",
              "stored TTs", "NT+CAT", "cube size");
  // Comparison sort is where plan height matters (sharing n·log n sorts);
  // counting sort makes every re-sort linear and neutralizes most of the
  // gap — the interplay of the paper's Sec. 3.1 argument with its
  // CountingSort remark in Sec. 7.
  for (const auto& [sort_label, policy] :
       {std::pair{"comparison", engine::SortPolicy::kComparisonOnly},
        std::pair{"counting", engine::SortPolicy::kAuto}}) {
    engine::CureOptions tall;
    tall.sort_policy = policy;
    engine::CureOptions short_plan;
    short_plan.plan_style = plan::ExecutionPlan::Style::kShort;
    short_plan.sort_policy = policy;
    CureBuildResult p3 =
        BuildCureVariant("P3 (tall)", ds.schema, input, tall, false);
    CureBuildResult p2 =
        BuildCureVariant("P2 (short)", ds.schema, input, short_plan, false);
    // Same logical cube: identical non-trivial groups. TT *entries* differ —
    // the taller plan maximizes the sub-trees a stored TT covers (Sec. 5.1),
    // so P2 must store at least as many TTs.
    const engine::BuildStats& s3 = p3.cube->stats();
    const engine::BuildStats& s2 = p2.cube->stats();
    CURE_CHECK_EQ(s3.nt + s3.cat, s2.nt + s2.cat);
    CURE_CHECK_LE(s3.tt, s2.tt);
    std::printf("%-12s %-12s %10.3f s %14llu %14llu %14s\n", "P3 (tall)",
                sort_label, p3.row.seconds,
                static_cast<unsigned long long>(s3.tt),
                static_cast<unsigned long long>(s3.nt + s3.cat),
                FormatBytes(p3.row.bytes).c_str());
    std::printf("%-12s %-12s %10.3f s %14llu %14llu %14s\n", "P2 (short)",
                sort_label, p2.row.seconds,
                static_cast<unsigned long long>(s2.tt),
                static_cast<unsigned long long>(s2.nt + s2.cat),
                FormatBytes(p2.row.bytes).c_str());
    std::printf("  -> P3 speedup: %.2fx; TT entries saved by taller plan: %llu\n",
                p2.row.seconds / std::max(p3.row.seconds, 1e-9),
                static_cast<unsigned long long>(s2.tt - s3.tt));
  }
}

}  // namespace

int main() {
  PrintHeader("Plan ablation — tall (P3) vs short (P2) hierarchical plans");
  const uint64_t scale = static_cast<uint64_t>(ScaleEnv(1));

  // APB-1: deep Product hierarchy, where dashed refinement matters most.
  gen::ApbSpec apb_spec;
  apb_spec.density = 0.4;
  apb_spec.scale_divisor = 200 * scale;
  RunDataset("APB-1 (deep hierarchies)", gen::MakeApb(apb_spec));

  // A *dense* synthetic schema: large segments survive deep into the plan,
  // which is exactly where tall-plan sort sharing pays (sparse data prunes
  // into trivial tuples before sorting costs accumulate).
  gen::Dataset ds;
  {
    std::vector<schema::Dimension> dims;
    dims.push_back(schema::Dimension::Linear("X", {120, 24, 4}));
    dims.push_back(schema::Dimension::Linear("Y", {60, 12, 3}));
    dims.push_back(schema::Dimension::Linear("Z", {30, 6}));
    auto schema = schema::CubeSchema::Create(
        std::move(dims), 1,
        {{schema::AggFn::kSum, 0, "s"}, {schema::AggFn::kCount, 0, "c"}});
    CURE_CHECK(schema.ok());
    ds.schema = std::move(schema).value();
    ds.table = schema::FactTable(3, 1);
    gen::Rng rng(33);
    const uint64_t rows = 400000 / scale;
    for (uint64_t t = 0; t < rows; ++t) {
      const uint32_t row[3] = {static_cast<uint32_t>(rng.NextRange(120)),
                               static_cast<uint32_t>(rng.NextRange(60)),
                               static_cast<uint32_t>(rng.NextRange(30))};
      const int64_t m = static_cast<int64_t>(rng.NextRange(1000));
      ds.table.AppendRow(row, &m);
    }
    ds.name = "dense 3-hierarchy synthetic";
  }
  RunDataset(ds.name, ds);

  std::printf(
      "\nShape check vs paper: under comparison sorting P3 beats P2 because "
      "expensive sorts sink to the bottom of the plan and are shared among "
      "more nodes (Sec. 3.1); counting sort (linear re-sorts) closes most of "
      "the time gap, but P3 always stores fewer TT entries (bigger shared "
      "sub-trees, Sec. 5.1).\n");
  return 0;
}
