// Reproduces Figure 18: signature pool size vs resulting cube size.
//
// The bounded pool classifies NTs/CATs from memory-resident signatures
// only; a smaller pool misses some cross-flush CATs and stores their
// aggregates redundantly. The paper finds the "working set" of signatures
// small: the curve flattens quickly, and ~10^6 signatures is within a few
// percent of the unbounded optimum. BUC / BU-BST / CURE+ sizes are printed
// as reference lines, as in the figure.

#include "bench/bench_util.h"
#include "cube/signature.h"

using namespace cure;         // NOLINT
using namespace cure::bench;  // NOLINT

namespace {

void RunDataset(const gen::Dataset& ds, const std::vector<size_t>& pool_sizes) {
  engine::FactInput input{.table = &ds.table};

  // Reference lines.
  auto buc = engine::BuildBuc(ds.schema, ds.table, {});
  auto bubst = engine::BuildBubst(ds.schema, ds.table, {});
  CURE_CHECK(buc.ok() && bubst.ok());

  PrintSubHeader(ds.name + " — cube size vs signature pool size");
  std::printf("reference: BUC %s, BU-BST %s\n",
              FormatBytes((*buc)->store().TotalBytes()).c_str(),
              FormatBytes((*bubst)->TotalBytes()).c_str());
  std::printf("%-16s %14s %14s %16s %12s\n", "pool (sigs)", "CURE", "CURE+",
              "pool footprint", "flushes");
  for (size_t pool : pool_sizes) {
    engine::CureOptions options;
    options.signature_pool_capacity = pool;
    CureBuildResult cure =
        BuildCureVariant("CURE", ds.schema, input, options, false);
    CureBuildResult plus =
        BuildCureVariant("CURE+", ds.schema, input, options, true);
    cube::SignaturePool probe(ds.schema.num_aggregates(), 0, pool);
    std::printf("%-16zu %14s %14s %16s %12llu\n", pool,
                FormatBytes(cure.row.bytes).c_str(),
                FormatBytes(plus.row.bytes).c_str(),
                FormatBytes(probe.FootprintBytes()).c_str(),
                static_cast<unsigned long long>(cure.cube->stats().signature_flushes));
  }
}

}  // namespace

int main() {
  PrintHeader("Figure 18 — signature pool size vs cube storage space");
  const uint64_t divisor = 32 * static_cast<uint64_t>(ScaleEnv(1));
  // The paper sweeps 10^6..9*10^6 signatures on ~10^6-row datasets; scaled
  // proportionally to our row counts.
  const std::vector<size_t> pool_sizes = {1000,   5000,   20000,
                                          100000, 500000, 2000000};
  RunDataset(gen::MakeCovTypeProxy(divisor), pool_sizes);
  RunDataset(gen::MakeSep85LProxy(divisor), pool_sizes);
  std::printf(
      "\nShape check vs paper: cube size decreases monotonically with pool "
      "size but the improvement is minor past a small working set; even the "
      "largest pool's footprint is a fraction of the cube it saves.\n");
  return 0;
}
