// Reproduces Figures 26, 27 & 28: flat vs hierarchical cubes over
// hierarchical data (APB-1 density 0.4, in memory): construction time,
// storage space, and average QRT on a roll-up/drill-down workload.
//
// Methods: BUC and BU-BST (flat only), FCURE / FCURE+ (CURE restricted to
// leaf levels), CURE / CURE+ (full hierarchical cube). Flat cubes answer a
// hierarchical node query by rolling the leaf-level node up on the fly.

#include "bench/bench_util.h"

using namespace cure;         // NOLINT
using namespace cure::bench;  // NOLINT

int main() {
  PrintHeader(
      "Figures 26-28 — flat vs hierarchical cubes on APB-1 density 0.4");
  const uint64_t scale = static_cast<uint64_t>(ScaleEnv(100));
  gen::ApbSpec spec;
  spec.density = 0.4;
  spec.scale_divisor = scale;
  gen::Dataset apb = gen::MakeApb(spec);
  std::printf("\n%llu rows in memory\n",
              static_cast<unsigned long long>(apb.table.num_rows()));
  engine::FactInput input{.table = &apb.table};

  // ---- Figs. 26-27: construction time and storage. ----
  std::vector<BuildRow> rows;
  auto buc = engine::BuildBuc(apb.schema, apb.table, {});
  CURE_CHECK(buc.ok());
  rows.push_back({"BUC", (*buc)->stats().build_seconds,
                  (*buc)->store().TotalBytes(), (*buc)->stats().plain, false,
                  "flat"});
  auto bubst = engine::BuildBubst(apb.schema, apb.table, {});
  CURE_CHECK(bubst.ok());
  rows.push_back({"BU-BST", (*bubst)->stats().build_seconds, (*bubst)->TotalBytes(),
                  (*bubst)->stats().plain + (*bubst)->stats().tt, false, "flat"});
  engine::CureOptions flat_options;
  flat_options.flat = true;
  CureBuildResult fcure =
      BuildCureVariant("FCURE", apb.schema, input, flat_options, false);
  rows.push_back(fcure.row);
  CureBuildResult fcure_plus =
      BuildCureVariant("FCURE+", apb.schema, input, flat_options, true);
  rows.push_back(fcure_plus.row);
  CureBuildResult cure = BuildCureVariant("CURE", apb.schema, input, {}, false);
  rows.push_back(cure.row);
  CureBuildResult cure_plus =
      BuildCureVariant("CURE+", apb.schema, input, {}, true);
  rows.push_back(cure_plus.row);
  PrintSubHeader("Figs. 26-27: construction time & storage space");
  PrintBuildRows(rows);

  // ---- Fig. 28: average QRT on hierarchical node queries. ----
  const size_t num_queries = static_cast<size_t>(QueriesEnv(100));
  const schema::NodeIdCodec codec(apb.schema);  // hierarchical codec
  const std::vector<schema::NodeId> workload =
      query::RandomNodeWorkload(codec, num_queries, /*seed=*/2628);

  auto fcure_engine = query::CureQueryEngine::Create(fcure.cube.get(), 1.0);
  auto fcure_plus_engine =
      query::CureQueryEngine::Create(fcure_plus.cube.get(), 1.0);
  auto cure_engine = query::CureQueryEngine::Create(cure.cube.get(), 1.0);
  auto cure_plus_engine = query::CureQueryEngine::Create(cure_plus.cube.get(), 1.0);
  CURE_CHECK(fcure_engine.ok() && fcure_plus_engine.ok() && cure_engine.ok() &&
             cure_plus_engine.ok());
  query::BucQueryEngine buc_engine(buc->get());
  query::BubstQueryEngine bubst_engine(bubst->get());

  // Flat engines answer a hierarchical node by querying the leaf-level twin
  // and rolling up on the fly.
  auto flat_query = [&](auto&& leaf_query) {
    return [&, leaf_query](schema::NodeId hier_node,
                           query::ResultSink* sink) -> Status {
      const query::FlatNodeMapping mapping =
          query::MapToFlatNode(apb.schema, hier_node);
      if (!mapping.needs_rollup) return leaf_query(mapping.flat_node, sink);
      query::ResultSink leaf_sink(/*retain=*/true);
      CURE_RETURN_IF_ERROR(leaf_query(mapping.flat_node, &leaf_sink));
      return query::RollUpRows(apb.schema, hier_node, leaf_sink.rows(), sink);
    };
  };

  PrintSubHeader("Fig. 28: average QRT, " + std::to_string(num_queries) +
                 " hierarchical node queries (all granularities)");
  struct QrtRow {
    const char* label;
    query::QrtStats stats;
  };
  std::vector<QrtRow> qrt;
  qrt.push_back({"BUC", MeasureEngineQrt(
                            workload,
                            flat_query([&](schema::NodeId id,
                                           query::ResultSink* sink) {
                              return buc_engine.QueryNode(id, sink);
                            }))});
  qrt.push_back({"BU-BST", MeasureEngineQrt(
                               workload,
                               flat_query([&](schema::NodeId id,
                                              query::ResultSink* sink) {
                                 return bubst_engine.QueryNode(id, sink);
                               }))});
  qrt.push_back({"FCURE", MeasureEngineQrt(
                              workload,
                              flat_query([&](schema::NodeId id,
                                             query::ResultSink* sink) {
                                return (*fcure_engine)->QueryNode(id, sink);
                              }))});
  qrt.push_back({"FCURE+", MeasureEngineQrt(
                               workload,
                               flat_query([&](schema::NodeId id,
                                              query::ResultSink* sink) {
                                 return (*fcure_plus_engine)->QueryNode(id, sink);
                               }))});
  qrt.push_back({"CURE", MeasureEngineQrt(
                             workload, [&](schema::NodeId id,
                                           query::ResultSink* sink) {
                               return (*cure_engine)->QueryNode(id, sink);
                             })});
  qrt.push_back({"CURE+", MeasureEngineQrt(
                              workload, [&](schema::NodeId id,
                                            query::ResultSink* sink) {
                                return (*cure_plus_engine)->QueryNode(id, sink);
                              })});
  std::printf("%-10s %14s %16s\n", "method", "avg QRT", "total tuples");
  for (const QrtRow& row : qrt) {
    std::printf("%-10s %14s %16llu\n", row.label,
                FormatSeconds(row.stats.avg_seconds).c_str(),
                static_cast<unsigned long long>(row.stats.total_tuples));
  }
  std::printf(
      "\nShape check vs paper: flat cubes build faster and are smaller "
      "(Figs. 26-27) but pay on-the-fly aggregation for every roll-up, so "
      "the hierarchical CURE cube wins the QRT comparison (Fig. 28); some "
      "CURE variant is the best choice in every metric.\n");
  return 0;
}
