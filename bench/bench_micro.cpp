// Micro-benchmarks (google-benchmark) of the performance-critical
// substrates: segment sorting (counting vs comparison, the skew remedy of
// Sec. 7), the Zipf sampler, signature-pool flushes, bitmap iteration, and
// the external sorter.

#include <benchmark/benchmark.h>

#include <numeric>

#include "cube/cube_store.h"
#include "cube/signature.h"
#include "engine/cure.h"
#include "engine/sorters.h"
#include "gen/random.h"
#include "gen/zipf.h"
#include "schema/cube_schema.h"
#include "schema/fact_table.h"
#include "storage/bitmap.h"
#include "storage/external_sort.h"

namespace {

using cure::engine::SortPolicy;
using cure::engine::SortScratch;
using cure::engine::SortSpan;

std::vector<uint32_t> MakeKeys(size_t n, uint32_t cardinality, double zipf) {
  cure::gen::Rng rng(42);
  cure::gen::ZipfSampler sampler(cardinality, zipf);
  std::vector<uint32_t> keys(n);
  for (size_t i = 0; i < n; ++i) keys[i] = sampler.Sample(&rng);
  return keys;
}

void BM_SortSpan(benchmark::State& state, SortPolicy policy, double zipf) {
  const size_t n = static_cast<size_t>(state.range(0));
  const uint32_t cardinality = static_cast<uint32_t>(state.range(1));
  const std::vector<uint32_t> keys = MakeKeys(n, cardinality, zipf);
  std::vector<uint32_t> idx(n);
  SortScratch scratch;
  for (auto _ : state) {
    std::iota(idx.begin(), idx.end(), 0);
    SortSpan(
        idx.data(), n, cardinality, [&](uint32_t i) { return keys[i]; }, policy,
        &scratch);
    benchmark::DoNotOptimize(idx.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void RegisterSorts() {
  for (const auto& [name, zipf] : {std::pair{"uniform", 0.0},
                                   std::pair{"skew2", 2.0}}) {
    benchmark::RegisterBenchmark(
        (std::string("BM_CountingSort/") + name).c_str(),
        [z = zipf](benchmark::State& s) {
          BM_SortSpan(s, SortPolicy::kCountingOnly, z);
        })
        ->Args({1 << 14, 1 << 10});
    benchmark::RegisterBenchmark(
        (std::string("BM_ComparisonSort/") + name).c_str(),
        [z = zipf](benchmark::State& s) {
          BM_SortSpan(s, SortPolicy::kComparisonOnly, z);
        })
        ->Args({1 << 14, 1 << 10});
  }
}

void BM_ZipfSample(benchmark::State& state) {
  cure::gen::ZipfSampler sampler(static_cast<uint64_t>(state.range(0)), 1.0);
  cure::gen::Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.Sample(&rng));
  }
}
BENCHMARK(BM_ZipfSample)->Arg(1000)->Arg(1000000);

void BM_SignaturePoolFlush(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<cure::schema::Dimension> dims;
  dims.push_back(cure::schema::Dimension::Flat("A", 100));
  auto schema = cure::schema::CubeSchema::Create(
      std::move(dims), 1,
      {{cure::schema::AggFn::kSum, 0, "s"}, {cure::schema::AggFn::kCount, 0, "c"}});
  cure::gen::Rng rng(11);
  for (auto _ : state) {
    state.PauseTiming();
    cure::cube::CubeStore store(&schema.value(), {});
    cure::cube::SignaturePool pool(2, 0, n);
    for (size_t i = 0; i < n; ++i) {
      // ~50% CAT rate: aggregates drawn from a small domain.
      const int64_t aggrs[2] = {static_cast<int64_t>(rng.NextRange(n / 2 + 1)), 1};
      pool.Add(aggrs, cure::cube::MakeRowId(0, rng.NextRange(n)), i % 64, nullptr);
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(pool.Flush(&store));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SignaturePoolFlush)->Arg(1 << 12)->Arg(1 << 16);

void BM_BitmapForEach(benchmark::State& state) {
  const uint64_t universe = 1 << 20;
  cure::storage::Bitmap bitmap(universe);
  cure::gen::Rng rng(13);
  for (int i = 0; i < state.range(0); ++i) bitmap.Set(rng.NextRange(universe));
  for (auto _ : state) {
    uint64_t sum = 0;
    bitmap.ForEach([&](uint64_t v) { sum += v; });
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_BitmapForEach)->Arg(1 << 10)->Arg(1 << 18);

void BM_ExternalSort(benchmark::State& state) {
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  cure::storage::Relation input = cure::storage::Relation::Memory(16);
  cure::gen::Rng rng(17);
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t rec[2] = {rng.NextUint64(), i};
    cure::Status s = input.Append(rec);
    benchmark::DoNotOptimize(s);
  }
  cure::storage::RecordLess less = [](const uint8_t* a, const uint8_t* b) {
    uint64_t ka, kb;
    memcpy(&ka, a, 8);
    memcpy(&kb, b, 8);
    return ka < kb;
  };
  for (auto _ : state) {
    cure::storage::Relation out = cure::storage::Relation::Memory(16);
    cure::storage::ExternalSortOptions options;
    options.memory_budget_bytes = n;  // force multi-run merge
    options.temp_dir = "/tmp";
    benchmark::DoNotOptimize(cure::storage::ExternalSort(input, less, options, &out));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ExternalSort)->Arg(1 << 14);

// Forced-external CURE construction at 1/2/4 threads over a hierarchical
// Zipf fact relation (~150k rows, ~25 sound partitions). The acceptance bar
// for the parallel construct stage is >= 1.5x wall-clock at 4 threads vs 1;
// compare the per-thread-count real time (and the construct_wall_s counter,
// which excludes the serial partitioning pass).
void BM_ParallelConstruct(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  static const cure::schema::CubeSchema* schema = [] {
    std::vector<cure::schema::Dimension> dims;
    dims.push_back(cure::schema::Dimension::Linear("A", {64, 4, 2}));
    dims.push_back(cure::schema::Dimension::Linear("B", {12, 3}));
    dims.push_back(cure::schema::Dimension::Flat("C", 6));
    auto result = cure::schema::CubeSchema::Create(
        std::move(dims), 1,
        {{cure::schema::AggFn::kSum, 0, "s"},
         {cure::schema::AggFn::kCount, 0, "c"}});
    return new cure::schema::CubeSchema(std::move(result).value());
  }();
  static const cure::storage::Relation* rel = [] {
    cure::schema::FactTable table(3, 1);
    cure::gen::Rng rng(23);
    cure::gen::ZipfSampler zipf_a(64, 0.3);
    cure::gen::ZipfSampler zipf_b(12, 0.5);
    for (uint64_t t = 0; t < 150000; ++t) {
      const uint32_t dims_row[3] = {zipf_a.Sample(&rng), zipf_b.Sample(&rng),
                                    static_cast<uint32_t>(rng.NextRange(6))};
      const int64_t m = static_cast<int64_t>(rng.NextRange(1000));
      table.AppendRow(dims_row, &m);
    }
    auto* r = new cure::storage::Relation(
        cure::storage::Relation::Memory(table.RecordSize()));
    cure::Status s = table.WriteTo(r);
    benchmark::DoNotOptimize(s);
    return r;
  }();

  cure::engine::CureOptions options;
  options.force_external = true;
  options.memory_budget_bytes = 1 << 20;
  options.num_threads = threads;
  cure::engine::FactInput input{.relation = rel};
  double construct_seconds = 0;
  uint64_t in_flight = 0;
  for (auto _ : state) {
    auto cube = cure::engine::BuildCure(*schema, input, options);
    if (!cube.ok()) {
      state.SkipWithError(cube.status().ToString().c_str());
      return;
    }
    construct_seconds += (*cube)->stats().construct_stage.wall_seconds;
    in_flight = (*cube)->stats().max_in_flight_partitions;
  }
  state.counters["construct_wall_s"] = benchmark::Counter(
      construct_seconds / static_cast<double>(state.iterations()));
  state.counters["in_flight"] =
      benchmark::Counter(static_cast<double>(in_flight));
}
BENCHMARK(BM_ParallelConstruct)->Arg(1)->Arg(2)->Arg(4)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  RegisterSorts();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
