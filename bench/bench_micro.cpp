// Micro-benchmarks (google-benchmark) of the performance-critical
// substrates: segment sorting (counting vs comparison, the skew remedy of
// Sec. 7), the Zipf sampler, signature-pool flushes, bitmap iteration, the
// external sorter, and the columnar batch scan path (batch kernels vs the
// record-at-a-time scalar scan).
//
// Extra modes (both exit without running google-benchmark):
//   --smoke               batch-vs-scalar checksum equality over memory- and
//                         file-backed relations; exit 0 iff all match (CI).
//   --kernels-json=PATH   hand-timed per-kernel ns/row, scalar vs batch,
//                         written as JSON (the BENCH_kernels.json baseline).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <numeric>
#include <string>

#include "cube/cube_store.h"
#include "cube/signature.h"
#include "engine/cure.h"
#include "engine/kernels.h"
#include "engine/sorters.h"
#include "gen/random.h"
#include "gen/zipf.h"
#include "schema/cube_schema.h"
#include "schema/fact_table.h"
#include "storage/bitmap.h"
#include "storage/external_sort.h"
#include "storage/file_io.h"
#include "storage/row_block.h"

namespace {

using cure::engine::SortPolicy;
using cure::engine::SortScratch;
using cure::engine::SortSpan;

std::vector<uint32_t> MakeKeys(size_t n, uint32_t cardinality, double zipf) {
  cure::gen::Rng rng(42);
  cure::gen::ZipfSampler sampler(cardinality, zipf);
  std::vector<uint32_t> keys(n);
  for (size_t i = 0; i < n; ++i) keys[i] = sampler.Sample(&rng);
  return keys;
}

void BM_SortSpan(benchmark::State& state, SortPolicy policy, double zipf) {
  const size_t n = static_cast<size_t>(state.range(0));
  const uint32_t cardinality = static_cast<uint32_t>(state.range(1));
  const std::vector<uint32_t> keys = MakeKeys(n, cardinality, zipf);
  std::vector<uint32_t> idx(n);
  SortScratch scratch;
  for (auto _ : state) {
    std::iota(idx.begin(), idx.end(), 0);
    SortSpan(
        idx.data(), n, cardinality, [&](uint32_t i) { return keys[i]; }, policy,
        &scratch);
    benchmark::DoNotOptimize(idx.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void RegisterSorts() {
  for (const auto& [name, zipf] : {std::pair{"uniform", 0.0},
                                   std::pair{"skew2", 2.0}}) {
    benchmark::RegisterBenchmark(
        (std::string("BM_CountingSort/") + name).c_str(),
        [z = zipf](benchmark::State& s) {
          BM_SortSpan(s, SortPolicy::kCountingOnly, z);
        })
        ->Args({1 << 14, 1 << 10});
    benchmark::RegisterBenchmark(
        (std::string("BM_ComparisonSort/") + name).c_str(),
        [z = zipf](benchmark::State& s) {
          BM_SortSpan(s, SortPolicy::kComparisonOnly, z);
        })
        ->Args({1 << 14, 1 << 10});
  }
}

void BM_ZipfSample(benchmark::State& state) {
  cure::gen::ZipfSampler sampler(static_cast<uint64_t>(state.range(0)), 1.0);
  cure::gen::Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.Sample(&rng));
  }
}
BENCHMARK(BM_ZipfSample)->Arg(1000)->Arg(1000000);

void BM_SignaturePoolFlush(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<cure::schema::Dimension> dims;
  dims.push_back(cure::schema::Dimension::Flat("A", 100));
  auto schema = cure::schema::CubeSchema::Create(
      std::move(dims), 1,
      {{cure::schema::AggFn::kSum, 0, "s"}, {cure::schema::AggFn::kCount, 0, "c"}});
  cure::gen::Rng rng(11);
  for (auto _ : state) {
    state.PauseTiming();
    cure::cube::CubeStore store(&schema.value(), {});
    cure::cube::SignaturePool pool(2, 0, n);
    for (size_t i = 0; i < n; ++i) {
      // ~50% CAT rate: aggregates drawn from a small domain.
      const int64_t aggrs[2] = {static_cast<int64_t>(rng.NextRange(n / 2 + 1)), 1};
      pool.Add(aggrs, cure::cube::MakeRowId(0, rng.NextRange(n)), i % 64, nullptr);
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(pool.Flush(&store));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SignaturePoolFlush)->Arg(1 << 12)->Arg(1 << 16);

void BM_BitmapForEach(benchmark::State& state) {
  const uint64_t universe = 1 << 20;
  cure::storage::Bitmap bitmap(universe);
  cure::gen::Rng rng(13);
  for (int i = 0; i < state.range(0); ++i) bitmap.Set(rng.NextRange(universe));
  for (auto _ : state) {
    uint64_t sum = 0;
    bitmap.ForEach([&](uint64_t v) { sum += v; });
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_BitmapForEach)->Arg(1 << 10)->Arg(1 << 18);

void BM_ExternalSort(benchmark::State& state) {
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  cure::storage::Relation input = cure::storage::Relation::Memory(16);
  cure::gen::Rng rng(17);
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t rec[2] = {rng.NextUint64(), i};
    cure::Status s = input.Append(rec);
    benchmark::DoNotOptimize(s);
  }
  cure::storage::RecordLess less = [](const uint8_t* a, const uint8_t* b) {
    uint64_t ka, kb;
    memcpy(&ka, a, 8);
    memcpy(&kb, b, 8);
    return ka < kb;
  };
  for (auto _ : state) {
    cure::storage::Relation out = cure::storage::Relation::Memory(16);
    cure::storage::ExternalSortOptions options;
    options.memory_budget_bytes = n;  // force multi-run merge
    options.temp_dir = "/tmp";
    benchmark::DoNotOptimize(cure::storage::ExternalSort(input, less, options, &out));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ExternalSort)->Arg(1 << 14);

// Forced-external CURE construction at 1/2/4 threads over a hierarchical
// Zipf fact relation (~150k rows, ~25 sound partitions). The acceptance bar
// for the parallel construct stage is >= 1.5x wall-clock at 4 threads vs 1;
// compare the per-thread-count real time (and the construct_wall_s counter,
// which excludes the serial partitioning pass).
void BM_ParallelConstruct(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  static const cure::schema::CubeSchema* schema = [] {
    std::vector<cure::schema::Dimension> dims;
    dims.push_back(cure::schema::Dimension::Linear("A", {64, 4, 2}));
    dims.push_back(cure::schema::Dimension::Linear("B", {12, 3}));
    dims.push_back(cure::schema::Dimension::Flat("C", 6));
    auto result = cure::schema::CubeSchema::Create(
        std::move(dims), 1,
        {{cure::schema::AggFn::kSum, 0, "s"},
         {cure::schema::AggFn::kCount, 0, "c"}});
    return new cure::schema::CubeSchema(std::move(result).value());
  }();
  static const cure::storage::Relation* rel = [] {
    cure::schema::FactTable table(3, 1);
    cure::gen::Rng rng(23);
    cure::gen::ZipfSampler zipf_a(64, 0.3);
    cure::gen::ZipfSampler zipf_b(12, 0.5);
    for (uint64_t t = 0; t < 150000; ++t) {
      const uint32_t dims_row[3] = {zipf_a.Sample(&rng), zipf_b.Sample(&rng),
                                    static_cast<uint32_t>(rng.NextRange(6))};
      const int64_t m = static_cast<int64_t>(rng.NextRange(1000));
      table.AppendRow(dims_row, &m);
    }
    auto* r = new cure::storage::Relation(
        cure::storage::Relation::Memory(table.RecordSize()));
    cure::Status s = table.WriteTo(r);
    benchmark::DoNotOptimize(s);
    return r;
  }();

  cure::engine::CureOptions options;
  options.force_external = true;
  options.memory_budget_bytes = 1 << 20;
  options.num_threads = threads;
  cure::engine::FactInput input{.relation = rel};
  double construct_seconds = 0;
  uint64_t in_flight = 0;
  for (auto _ : state) {
    auto cube = cure::engine::BuildCure(*schema, input, options);
    if (!cube.ok()) {
      state.SkipWithError(cube.status().ToString().c_str());
      return;
    }
    construct_seconds += (*cube)->stats().construct_stage.wall_seconds;
    in_flight = (*cube)->stats().max_in_flight_partitions;
  }
  state.counters["construct_wall_s"] = benchmark::Counter(
      construct_seconds / static_cast<double>(state.iterations()));
  state.counters["in_flight"] =
      benchmark::Counter(static_cast<double>(in_flight));
}
BENCHMARK(BM_ParallelConstruct)->Arg(1)->Arg(2)->Arg(4)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// ---- Columnar batch scan path: batch kernels vs the scalar scan ----
//
// Records mimic a fact relation column pair: [u32 key][i64 measure],
// 12 bytes. The scalar paths reproduce the legacy record-at-a-time shape
// (Scanner::Next per row, memcpy field extraction, per-row aggregate
// dispatch); the batch paths run Relation::BlockScanner + one gather per
// column per block + the contiguous kernels of engine/kernels.h.

constexpr uint32_t kKernelCardinality = 1024;
constexpr uint64_t kKernelRows = 1 << 18;

cure::storage::Relation MakeKernelRelation(uint64_t n, bool file_backed,
                                           const std::string& path) {
  cure::gen::Rng rng(29);
  cure::gen::ZipfSampler zipf(kKernelCardinality, 0.8);
  cure::storage::Relation rel = cure::storage::Relation::Memory(12);
  if (file_backed) {
    auto r = cure::storage::Relation::CreateFile(path, 12);
    if (!r.ok()) {
      std::fprintf(stderr, "cannot create %s: %s\n", path.c_str(),
                   r.status().ToString().c_str());
      std::exit(1);
    }
    rel = std::move(r).value();
  }
  for (uint64_t i = 0; i < n; ++i) {
    uint8_t rec[12];
    const uint32_t key = zipf.Sample(&rng);
    const int64_t measure = static_cast<int64_t>(rng.NextRange(1000));
    std::memcpy(rec, &key, 4);
    std::memcpy(rec + 4, &measure, 8);
    cure::Status s = rel.Append(rec);
    benchmark::DoNotOptimize(s);
  }
  if (file_backed) {
    cure::Status s = rel.Seal();
    benchmark::DoNotOptimize(s);
  }
  return rel;
}

/// Scalar histogram fill: one Scanner::Next and one memcpy per row.
/// Returns an order-independent checksum of the counts array.
uint64_t HistogramScalar(const cure::storage::Relation& rel) {
  std::vector<uint32_t> counts(kKernelCardinality + 1, 0);
  cure::storage::Relation::Scanner scan(rel);
  while (const uint8_t* rec = scan.Next()) {
    uint32_t key;
    std::memcpy(&key, rec, 4);
    ++counts[key + 1];
  }
  uint64_t checksum = 0;
  for (size_t c = 0; c < counts.size(); ++c) checksum += counts[c] * (c + 1);
  return checksum;
}

/// Batch histogram fill: one gather + HistogramFill per block.
uint64_t HistogramBatch(const cure::storage::Relation& rel, size_t block_rows) {
  std::vector<uint32_t> counts(kKernelCardinality + 1, 0);
  cure::storage::Relation::BlockScanner scan(rel, block_rows);
  cure::storage::RowBlock block;
  std::vector<uint32_t> keys(block_rows);
  while (scan.Next(&block)) {
    cure::storage::GatherBlockU32(block, 0, keys.data());
    cure::engine::HistogramFill(keys.data(), block.rows, counts.data());
  }
  uint64_t checksum = 0;
  for (size_t c = 0; c < counts.size(); ++c) checksum += counts[c] * (c + 1);
  return checksum;
}

/// Scalar SUM/COUNT accumulate: per-row memcpy and per-row per-aggregate
/// dispatch, the legacy executor shape.
uint64_t AggregateScalar(const cure::storage::Relation& rel) {
  const cure::schema::AggFn fns[2] = {cure::schema::AggFn::kSum,
                                      cure::schema::AggFn::kCount};
  int64_t acc[2] = {0, 0};
  cure::storage::Relation::Scanner scan(rel);
  while (const uint8_t* rec = scan.Next()) {
    int64_t measure;
    std::memcpy(&measure, rec + 4, 8);
    for (int a = 0; a < 2; ++a) {
      switch (fns[a]) {
        case cure::schema::AggFn::kSum:
          acc[a] += measure;
          break;
        case cure::schema::AggFn::kCount:
          acc[a] += 1;
          break;
        case cure::schema::AggFn::kMin:
          acc[a] = std::min(acc[a], measure);
          break;
        case cure::schema::AggFn::kMax:
          acc[a] = std::max(acc[a], measure);
          break;
      }
    }
  }
  return static_cast<uint64_t>(acc[0]) ^ (static_cast<uint64_t>(acc[1]) << 32);
}

/// Batch SUM/COUNT accumulate: one gather + contiguous-slice kernels per
/// block; COUNT degenerates to the block row count.
uint64_t AggregateBatch(const cure::storage::Relation& rel, size_t block_rows) {
  int64_t sum = 0;
  int64_t count = 0;
  cure::storage::Relation::BlockScanner scan(rel, block_rows);
  cure::storage::RowBlock block;
  std::vector<int64_t> measures(block_rows);
  while (scan.Next(&block)) {
    cure::storage::GatherBlockI64(block, 4, measures.data());
    sum += cure::engine::SumSlice(measures.data(), block.rows);
    count += static_cast<int64_t>(block.rows);
  }
  return static_cast<uint64_t>(sum) ^ (static_cast<uint64_t>(count) << 32);
}

const cure::storage::Relation& KernelRelation(bool file_backed) {
  static const cure::storage::Relation* memory =
      new cure::storage::Relation(MakeKernelRelation(kKernelRows, false, ""));
  static const cure::storage::Relation* file = new cure::storage::Relation(
      MakeKernelRelation(kKernelRows, true, "/tmp/cure_bench_kernels.bin"));
  return file_backed ? *file : *memory;
}

void BM_HistogramFillScalar(benchmark::State& state) {
  const cure::storage::Relation& rel = KernelRelation(state.range(0) != 0);
  for (auto _ : state) benchmark::DoNotOptimize(HistogramScalar(rel));
  state.SetItemsProcessed(state.iterations() * kKernelRows);
}
BENCHMARK(BM_HistogramFillScalar)->Arg(0)->Arg(1);

void BM_HistogramFillBatch(benchmark::State& state) {
  const cure::storage::Relation& rel = KernelRelation(state.range(0) != 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(HistogramBatch(rel, cure::storage::kDefaultBlockRows));
  }
  state.SetItemsProcessed(state.iterations() * kKernelRows);
}
BENCHMARK(BM_HistogramFillBatch)->Arg(0)->Arg(1);

void BM_AggAccumulateScalar(benchmark::State& state) {
  const cure::storage::Relation& rel = KernelRelation(state.range(0) != 0);
  for (auto _ : state) benchmark::DoNotOptimize(AggregateScalar(rel));
  state.SetItemsProcessed(state.iterations() * kKernelRows);
}
BENCHMARK(BM_AggAccumulateScalar)->Arg(0)->Arg(1);

void BM_AggAccumulateBatch(benchmark::State& state) {
  const cure::storage::Relation& rel = KernelRelation(state.range(0) != 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(AggregateBatch(rel, cure::storage::kDefaultBlockRows));
  }
  state.SetItemsProcessed(state.iterations() * kKernelRows);
}
BENCHMARK(BM_AggAccumulateBatch)->Arg(0)->Arg(1);

/// Median-of-repeats wall time of `fn`, in nanoseconds per row.
template <typename Fn>
double TimeNsPerRow(Fn fn, uint64_t rows, int repeats = 5) {
  std::vector<double> ns(repeats);
  for (int r = 0; r < repeats; ++r) {
    const auto start = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(fn());
    const auto stop = std::chrono::steady_clock::now();
    ns[r] = std::chrono::duration<double, std::nano>(stop - start).count() /
            static_cast<double>(rows);
  }
  std::sort(ns.begin(), ns.end());
  return ns[repeats / 2];
}

/// --smoke: batch and scalar paths must agree bit-for-bit on both backends
/// and several block sizes. Exit code 0 iff everything matches.
int RunSmoke() {
  int failures = 0;
  for (bool file_backed : {false, true}) {
    const cure::storage::Relation& rel = KernelRelation(file_backed);
    const uint64_t hist_ref = HistogramScalar(rel);
    const uint64_t agg_ref = AggregateScalar(rel);
    for (size_t block_rows : {3ul, 64ul, 1024ul, 4096ul}) {
      const uint64_t hist = HistogramBatch(rel, block_rows);
      const uint64_t agg = AggregateBatch(rel, block_rows);
      const bool ok = hist == hist_ref && agg == agg_ref;
      failures += ok ? 0 : 1;
      std::printf("smoke %s block=%zu hist=%llu agg=%llu %s\n",
                  file_backed ? "file" : "memory", block_rows,
                  static_cast<unsigned long long>(hist),
                  static_cast<unsigned long long>(agg), ok ? "OK" : "MISMATCH");
    }
  }
  std::printf(failures == 0 ? "SMOKE PASS\n" : "SMOKE FAIL\n");
  return failures == 0 ? 0 : 1;
}

/// --kernels-json: per-kernel ns/row baseline, scalar vs batch.
int WriteKernelsJson(const std::string& path) {
  std::ofstream out(path);
  if (!out.good()) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  out << "{\n  \"rows\": " << kKernelRows
      << ",\n  \"cardinality\": " << kKernelCardinality
      << ",\n  \"block_rows\": " << cure::storage::kDefaultBlockRows
      << ",\n  \"kernels\": [\n";
  bool first = true;
  for (bool file_backed : {false, true}) {
    const cure::storage::Relation& rel = KernelRelation(file_backed);
    const char* backend = file_backed ? "file" : "memory";
    struct Row {
      const char* kernel;
      double scalar_ns;
      double batch_ns;
    };
    const Row rows[] = {
        {"histogram_fill",
         TimeNsPerRow([&] { return HistogramScalar(rel); }, kKernelRows),
         TimeNsPerRow(
             [&] {
               return HistogramBatch(rel, cure::storage::kDefaultBlockRows);
             },
             kKernelRows)},
        {"sum_count_accumulate",
         TimeNsPerRow([&] { return AggregateScalar(rel); }, kKernelRows),
         TimeNsPerRow(
             [&] {
               return AggregateBatch(rel, cure::storage::kDefaultBlockRows);
             },
             kKernelRows)},
    };
    for (const Row& row : rows) {
      if (!first) out << ",\n";
      first = false;
      char buf[256];
      std::snprintf(buf, sizeof(buf),
                    "    {\"kernel\": \"%s\", \"backend\": \"%s\", "
                    "\"scalar_ns_per_row\": %.2f, \"batch_ns_per_row\": %.2f, "
                    "\"speedup\": %.2f}",
                    row.kernel, backend, row.scalar_ns, row.batch_ns,
                    row.scalar_ns / row.batch_ns);
      out << buf;
      std::printf("%s\n", buf);
    }
  }
  out << "\n  ]\n}\n";
  return out.good() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") return RunSmoke();
    if (arg.rfind("--kernels-json=", 0) == 0) {
      return WriteKernelsJson(arg.substr(std::strlen("--kernels-json=")));
    }
  }
  RegisterSorts();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
