// Reproduces Figure 25: average query response time on APB-1 (density 4)
// for all 168 node queries, grouped into ten equal-sized buckets ordered by
// result size — CURE, CURE+, CURE_DR, CURE_DR+.
//
// The paper's observation: the DR variants answer 60% of node queries in
// <0.5 s and 80% in <10 s; only the few largest (multi-million-tuple)
// queries are slow, and those are impractical for analysts anyway.

#include <algorithm>

#include "bench/bench_util.h"
#include "engine/kernels.h"
#include "storage/file_io.h"
#include "storage/relation.h"

using namespace cure;         // NOLINT
using namespace cure::bench;  // NOLINT

int main() {
  PrintHeader(
      "Figure 25 — APB-1 density 4: avg QRT of all 168 node queries in ten "
      "result-size buckets");
  const uint64_t scale = static_cast<uint64_t>(ScaleEnv(200));
  const uint64_t budget = MemBudgetEnv(3 * (256ull << 20) / scale);

  gen::ApbSpec spec;
  spec.density = 4.0;
  spec.scale_divisor = scale;
  gen::Dataset apb = gen::MakeApb(spec);
  const std::string path = "/tmp/cure_bench_apb_qrt_fact.bin";
  auto rel = storage::Relation::CreateFile(path, apb.table.RecordSize());
  CURE_CHECK(rel.ok());
  CURE_CHECK_OK(apb.table.WriteTo(&rel.value()));
  CURE_CHECK_OK(rel->Seal());
  std::printf("\n%llu rows (%s), budget %s\n",
              static_cast<unsigned long long>(apb.table.num_rows()),
              FormatBytes(rel->bytes()).c_str(), FormatBytes(budget).c_str());

  engine::FactInput input{.relation = &rel.value()};
  struct Variant {
    const char* label;
    bool dr;
    bool plus;
    std::unique_ptr<engine::CureCube> cube;
    std::unique_ptr<query::CureQueryEngine> engine;
  };
  std::vector<Variant> variants;
  variants.push_back({"CURE", false, false, nullptr, nullptr});
  variants.push_back({"CURE+", false, true, nullptr, nullptr});
  variants.push_back({"CURE_DR", true, false, nullptr, nullptr});
  variants.push_back({"CURE_DR+", true, true, nullptr, nullptr});
  for (Variant& v : variants) {
    engine::CureOptions options;
    options.memory_budget_bytes = budget;
    options.dims_in_nt = v.dr;
    options.temp_dir = "/tmp";
    CureBuildResult built =
        BuildCureVariant(v.label, apb.schema, input, options, v.plus);
    v.cube = std::move(built.cube);
    // Cubes are disk-resident at this density (the paper's setting).
    SpillCure(v.cube.get(), std::string("/tmp/cure_bench_fig25_") + v.label + ".bin");
    // Paper: 25% of memory is left for caching; cache that fraction of R.
    auto engine = query::CureQueryEngine::Create(
        v.cube.get(),
        std::min(1.0, 0.25 * static_cast<double>(budget) /
                          static_cast<double>(rel->bytes())));
    CURE_CHECK(engine.ok()) << engine.status().ToString();
    v.engine = std::move(engine).value();
  }

  // All 168 node queries, ordered by result size (cheap pre-pass counting
  // tuples with the DR engine), then bucketed into ten sets of ~17.
  const schema::NodeIdCodec& codec = variants[0].cube->store().codec();
  struct NodeCost {
    schema::NodeId id;
    uint64_t tuples;
  };
  std::vector<NodeCost> nodes;
  for (schema::NodeId id = 0; id < codec.num_nodes(); ++id) {
    query::ResultSink sink;
    CURE_CHECK_OK(variants[3].engine->QueryNode(id, &sink));
    nodes.push_back({id, sink.count()});
  }
  std::sort(nodes.begin(), nodes.end(),
            [](const NodeCost& a, const NodeCost& b) { return a.tuples < b.tuples; });

  // Per-variant avg QRT per bucket, plus whole-lattice latency percentiles
  // (from the shared LogHistogram in MeasureQrt) printed after the table.
  std::printf("\n%-8s %14s | %12s %12s %12s %12s\n", "bucket", "max result",
              "CURE", "CURE+", "CURE_DR", "CURE_DR+");
  const size_t buckets = 10;
  for (size_t b = 0; b < buckets; ++b) {
    const size_t begin = b * nodes.size() / buckets;
    const size_t end = (b + 1) * nodes.size() / buckets;
    if (begin >= end) continue;
    std::vector<schema::NodeId> workload;
    uint64_t max_tuples = 0;
    for (size_t i = begin; i < end; ++i) {
      workload.push_back(nodes[i].id);
      max_tuples = std::max(max_tuples, nodes[i].tuples);
    }
    std::printf("%-8zu %14llu |", b + 1,
                static_cast<unsigned long long>(max_tuples));
    for (Variant& v : variants) {
      const query::QrtStats stats = MeasureEngineQrt(
          workload, [&](schema::NodeId id, query::ResultSink* sink) {
            return v.engine->QueryNode(id, sink);
          });
      std::printf(" %12s", FormatSeconds(stats.avg_seconds).c_str());
    }
    std::printf("\n");
  }
  std::printf("\n%-10s %12s %12s %12s %12s\n", "all nodes", "p50", "p95",
              "max", "avg");
  std::vector<schema::NodeId> all_nodes;
  for (const NodeCost& node : nodes) all_nodes.push_back(node.id);
  // Per-variant latency distributions land in one shared registry and are
  // re-rendered below in the serving layer's STATS histogram format.
  MetricsRegistry qrt_metrics;
  for (Variant& v : variants) {
    const query::QrtStats stats = MeasureEngineQrt(
        all_nodes,
        [&](schema::NodeId id, query::ResultSink* sink) {
          return v.engine->QueryNode(id, sink);
        },
        qrt_metrics.histogram(std::string("qrt_") + v.label));
    std::printf("%-10s %12s %12s %12s %12s\n", v.label,
                FormatSeconds(stats.p50_seconds).c_str(),
                FormatSeconds(stats.p95_seconds).c_str(),
                FormatSeconds(stats.max_seconds).c_str(),
                FormatSeconds(stats.avg_seconds).c_str());
  }
  std::printf("\nSTATS-format latency histograms (identical renderer to "
              "cure_serve):\n%s", qrt_metrics.TextSnapshot().c_str());

  // Batch vs scalar scan path (DESIGN.md §13): the cubes are byte-identical,
  // only the speed differs. Rebuild plain CURE on the record-at-a-time
  // reference path (batch_rows = 1) and compare the end-to-end build time
  // and the all-node avg QRT against the default block-oriented build above.
  {
    engine::CureOptions options;
    options.memory_budget_bytes = budget;
    options.temp_dir = "/tmp";
    options.batch_rows = 1;
    CureBuildResult scalar =
        BuildCureVariant("CURE(scalar)", apb.schema, input, options, false);
    SpillCure(scalar.cube.get(), "/tmp/cure_bench_fig25_scalar.bin");
    auto scalar_engine = query::CureQueryEngine::Create(
        scalar.cube.get(),
        std::min(1.0, 0.25 * static_cast<double>(budget) /
                          static_cast<double>(rel->bytes())));
    CURE_CHECK(scalar_engine.ok()) << scalar_engine.status().ToString();
    (*scalar_engine)->set_batch_rows(1);
    const query::QrtStats scalar_qrt = MeasureEngineQrt(
        all_nodes, [&](schema::NodeId id, query::ResultSink* sink) {
          return (*scalar_engine)->QueryNode(id, sink);
        });
    const query::QrtStats batch_qrt = MeasureEngineQrt(
        all_nodes, [&](schema::NodeId id, query::ResultSink* sink) {
          return variants[0].engine->QueryNode(id, sink);
        });
    const double scalar_build = scalar.cube->stats().build_seconds;
    const double batch_build = variants[0].cube->stats().build_seconds;
    std::printf(
        "\nBatch vs scalar scan path (plain CURE, batch_rows=%zu vs 1):\n"
        "  end-to-end build: %s batch vs %s scalar (%.2fx)\n"
        "  all-node avg QRT: %s batch vs %s scalar (%.2fx)\n",
        engine::ResolveBatchRows(0), FormatSeconds(batch_build).c_str(),
        FormatSeconds(scalar_build).c_str(),
        batch_build > 0 ? scalar_build / batch_build : 0.0,
        FormatSeconds(batch_qrt.avg_seconds).c_str(),
        FormatSeconds(scalar_qrt.avg_seconds).c_str(),
        batch_qrt.avg_seconds > 0 ? scalar_qrt.avg_seconds / batch_qrt.avg_seconds
                                  : 0.0);
    CURE_CHECK_OK(storage::RemoveFile("/tmp/cure_bench_fig25_scalar.bin"));
  }

  CURE_CHECK_OK(storage::RemoveFile(path));
  for (Variant& v : variants) {
    CURE_CHECK_OK(
        storage::RemoveFile(std::string("/tmp/cure_bench_fig25_") + v.label + ".bin"));
  }
  std::printf(
      "\nShape check vs paper: QRT grows with result size; the DR variants "
      "(dimension values materialized) are fastest; small- and mid-size "
      "node queries — the analytically useful ones — answer quickly, only "
      "the few largest nodes are expensive.\n");
  return 0;
}
