// Serving-layer throughput and latency: QPS and latency percentiles of the
// concurrent CubeServer as client threads scale (1/2/4/8), with the result
// cache off and on.
//
// Each client fires a unique random-node workload (no repeated nodes, so
// cache hits come only from *cross-client* overlap — the serving scenario)
// and every response is checked against the serial baseline. Expected
// shape: QPS scales with clients until the worker pool saturates; the cache
// turns repeat traffic into sub-microsecond hits, collapsing p50.

#include <atomic>
#include <thread>

#include "bench/bench_util.h"
#include "serve/cube_server.h"

using namespace cure;         // NOLINT
using namespace cure::bench;  // NOLINT

namespace {

struct Expected {
  uint64_t count = 0;
  uint64_t checksum = 0;
};

void RunDataset(const gen::Dataset& ds, size_t num_queries, int rounds,
                JsonReport* json) {
  engine::FactInput input{.table = &ds.table};
  engine::CureOptions options;
  CureBuildResult built = BuildCureVariant("CURE", ds.schema, input, options,
                                           /*post_process=*/false);
  const schema::NodeIdCodec codec(built.cube->schema());
  const std::vector<schema::NodeId> workload =
      query::RandomNodeWorkload(codec, num_queries, /*seed=*/19,
                                /*unique=*/true);

  // Serial baseline for correctness checking and as the 1-thread reference.
  auto serial = query::CureQueryEngine::Create(built.cube.get(), 1.0);
  CURE_CHECK(serial.ok());
  std::vector<Expected> expected(workload.size());
  for (size_t i = 0; i < workload.size(); ++i) {
    query::ResultSink sink;
    CURE_CHECK_OK((*serial)->QueryNode(workload[i], &sink));
    expected[i] = {sink.count(), sink.checksum()};
  }

  PrintSubHeader(ds.name + " — serving throughput vs client threads (" +
                 std::to_string(workload.size()) + " unique node queries x " +
                 std::to_string(rounds) + " rounds per client)");
  std::printf("%-8s %-7s %10s %12s %12s %12s %12s\n", "clients", "cache",
              "QPS", "p50", "p95", "p99", "max");
  for (const bool cache_on : {false, true}) {
    for (const int clients : {1, 2, 4, 8}) {
      serve::CubeServerOptions server_options;
      server_options.num_threads = 4;
      server_options.max_inflight = 4096;
      server_options.cache_bytes = cache_on ? (64ull << 20) : 0;
      auto server = serve::CubeServer::Create(built.cube.get(), server_options);
      CURE_CHECK(server.ok()) << server.status().ToString();

      std::atomic<uint64_t> mismatches{0};
      Stopwatch watch;
      std::vector<std::thread> threads;
      for (int c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
          for (int r = 0; r < rounds; ++r) {
            // Stagger client start points so concurrent clients touch
            // different nodes first (cache hits need cross-client overlap).
            const size_t offset = (static_cast<size_t>(c) * workload.size()) /
                                  static_cast<size_t>(clients);
            for (size_t i = 0; i < workload.size(); ++i) {
              const size_t q = (offset + i) % workload.size();
              serve::QueryRequest request;
              request.node = workload[q];
              serve::QueryResponse response =
                  server->get()->Submit(request).get();
              if (!response.status.ok() ||
                  response.count != expected[q].count ||
                  response.checksum != expected[q].checksum) {
                mismatches.fetch_add(1, std::memory_order_relaxed);
              }
            }
          }
        });
      }
      for (std::thread& t : threads) t.join();
      const double elapsed = watch.ElapsedSeconds();
      CURE_CHECK(mismatches.load() == 0)
          << mismatches.load() << " responses diverged from serial";

      const uint64_t total =
          static_cast<uint64_t>(clients) * rounds * workload.size();
      const LogHistogram::Snapshot lat =
          server->get()->metrics()->histogram("query_latency")->TakeSnapshot();
      std::printf("%-8d %-7s %10.0f %12s %12s %12s %12s\n", clients,
                  cache_on ? "on" : "off",
                  static_cast<double>(total) / elapsed,
                  FormatSeconds(lat.p50 * 1e-6).c_str(),
                  FormatSeconds(lat.p95 * 1e-6).c_str(),
                  FormatSeconds(lat.p99 * 1e-6).c_str(),
                  FormatSeconds(lat.max * 1e-6).c_str());
      json->BeginSeries("clients=" + std::to_string(clients) +
                        ",cache=" + (cache_on ? "on" : "off"));
      json->Add("qps", static_cast<double>(total) / elapsed);
      json->Add("p50_us", static_cast<double>(lat.p50));
      json->Add("p95_us", static_cast<double>(lat.p95));
      json->Add("p99_us", static_cast<double>(lat.p99));
      json->Add("max_us", static_cast<double>(lat.max));
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_out = ParseJsonOutArg(argc, argv);
  PrintHeader("Serving layer — concurrent query throughput and latency");
  const uint64_t divisor = 32 * static_cast<uint64_t>(ScaleEnv(1));
  const size_t num_queries = static_cast<size_t>(QueriesEnv(100));
  const int rounds = 3;
  JsonReport json("serve_concurrency");
  RunDataset(gen::MakeCovTypeProxy(divisor), num_queries, rounds, &json);
  if (!json_out.empty()) json.WriteOrDie(json_out);
  std::printf(
      "\nShape check: QPS grows with client threads until the 4 query "
      "workers saturate; enabling the result cache collapses p50 for repeat "
      "traffic while every response stays identical to serial execution.\n");
  return 0;
}
