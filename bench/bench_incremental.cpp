// Extension benchmark (paper Sec. 8 future work): incremental maintenance
// vs full reconstruction across delta sizes. The crossover shows up where
// the delta stops being small relative to the base.

#include "bench/bench_util.h"
#include "engine/incremental.h"
#include "gen/random.h"

using namespace cure;         // NOLINT
using namespace cure::bench;  // NOLINT

namespace {

void AppendRows(schema::FactTable* table, uint64_t rows, uint64_t seed) {
  gen::Rng rng(seed);
  for (uint64_t i = 0; i < rows; ++i) {
    const uint32_t row[3] = {static_cast<uint32_t>(rng.NextRange(3000)),
                             static_cast<uint32_t>(rng.NextRange(400)),
                             static_cast<uint32_t>(rng.NextRange(15))};
    const int64_t m = static_cast<int64_t>(rng.NextRange(100));
    table->AppendRow(row, &m);
  }
}

schema::CubeSchema MakeSchema() {
  std::vector<schema::Dimension> dims;
  dims.push_back(schema::Dimension::Linear("A", {3000, 150, 10}));
  dims.push_back(schema::Dimension::Linear("B", {400, 25}));
  dims.push_back(schema::Dimension::Flat("C", 15));
  auto schema = schema::CubeSchema::Create(
      std::move(dims), 1,
      {{schema::AggFn::kSum, 0, "s"}, {schema::AggFn::kCount, 0, "c"}});
  CURE_CHECK(schema.ok());
  return std::move(schema).value();
}

}  // namespace

int main() {
  PrintHeader("Extension — incremental maintenance vs full rebuild");
  const uint64_t base_rows = 200000 / static_cast<uint64_t>(ScaleEnv(1));
  schema::CubeSchema schema = MakeSchema();

  std::printf("\nbase: %llu rows\n",
              static_cast<unsigned long long>(base_rows));
  std::printf("%-12s %14s %14s %10s %14s %14s\n", "delta", "ApplyDelta",
              "full rebuild", "speedup", "maintained", "rebuilt");
  for (uint64_t delta : {uint64_t{10}, uint64_t{100}, uint64_t{1000},
                         uint64_t{10000}, uint64_t{50000}}) {
    schema::FactTable table(3, 1);
    AppendRows(&table, base_rows, 42);
    engine::CureOptions options;
    engine::FactInput input{.table = &table};
    auto cube = engine::BuildCure(schema, input, options);
    CURE_CHECK(cube.ok());

    const uint64_t old_rows = table.num_rows();
    AppendRows(&table, delta, 43);
    auto stats = engine::ApplyDelta(cube->get(), table, old_rows);
    CURE_CHECK(stats.ok()) << stats.status().ToString();

    // Full rebuild over the grown table.
    Stopwatch watch;
    auto rebuilt = engine::BuildCure(schema, input, options);
    CURE_CHECK(rebuilt.ok());
    const double rebuild_seconds = watch.ElapsedSeconds();

    std::printf("%-12llu %14s %14s %9.1fx %14s %14s\n",
                static_cast<unsigned long long>(delta),
                FormatSeconds(stats->seconds).c_str(),
                FormatSeconds(rebuild_seconds).c_str(),
                rebuild_seconds / std::max(stats->seconds, 1e-9),
                FormatBytes((*cube)->TotalBytes()).c_str(),
                FormatBytes((*rebuilt)->TotalBytes()).c_str());
  }
  std::printf(
      "\nShape check: incremental updates beat rebuilding for small deltas "
      "(probing scans node relations but skips all re-sorting and most "
      "output) and lose once the delta is a large fraction of the base; the "
      "maintained cube stays close in size to the rebuilt one (missed "
      "cross-delta CAT sharing only).\n");
  return 0;
}
