// Shared helpers for the command-line tools: opening a persisted cube
// directory (cube + fact relation + schema + dictionaries) and running the
// TCP serving loop used by both `cure_serve` and `cure_tool serve`.
#ifndef CURE_TOOLS_TOOL_COMMON_H_
#define CURE_TOOLS_TOOL_COMMON_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "engine/cure.h"
#include "etl/loader.h"
#include "etl/schema_io.h"
#include "serve/cube_server.h"
#include "serve/tcp_server.h"
#include "storage/relation.h"

namespace cure {
namespace tools {

/// A persisted cube directory opened for querying: schema, fact relation,
/// the cube itself, and the per-(dim, level) string dictionaries.
struct OpenedCube {
  schema::CubeSchema schema;
  storage::Relation fact;
  std::unique_ptr<engine::CureCube> cube;
  std::vector<std::vector<etl::Dictionary>> dictionaries;
};

inline Result<std::unique_ptr<OpenedCube>> OpenCubeDir(const std::string& dir) {
  auto opened = std::make_unique<OpenedCube>();
  CURE_ASSIGN_OR_RETURN(std::string schema_text,
                        etl::ReadFileToString(dir + "/schema.txt"));
  CURE_ASSIGN_OR_RETURN(opened->schema, etl::DeserializeSchema(schema_text));
  const size_t fact_record = 4ull * opened->schema.num_dims() +
                             8ull * opened->schema.num_raw_measures();
  CURE_ASSIGN_OR_RETURN(
      opened->fact,
      storage::Relation::OpenFile(dir + "/fact.bin", fact_record));
  CURE_ASSIGN_OR_RETURN(opened->cube,
                        engine::CureCube::OpenPersisted(
                            opened->schema, dir + "/cube.bin", &opened->fact));
  opened->dictionaries.resize(opened->schema.num_dims());
  for (int d = 0; d < opened->schema.num_dims(); ++d) {
    opened->dictionaries[d].resize(opened->schema.dim(d).num_levels());
    for (int l = 0; l < opened->schema.dim(d).num_levels(); ++l) {
      const std::string path =
          dir + "/dict_" + std::to_string(d) + "_" + std::to_string(l) + ".txt";
      CURE_ASSIGN_OR_RETURN(std::string data, etl::ReadFileToString(path));
      CURE_ASSIGN_OR_RETURN(opened->dictionaries[d][l],
                            etl::Dictionary::Deserialize(data));
    }
  }
  return opened;
}

/// Slice values like France in `country=France` resolve through the cube's
/// dictionaries. `opened` must outlive the returned resolver.
inline serve::SliceValueResolver MakeDictResolver(const OpenedCube* opened) {
  return [opened](int dim, int level,
                  const std::string& value) -> Result<uint32_t> {
    return opened->dictionaries[dim][level].Lookup(value);
  };
}

/// Row output decodes dimension codes back to their strings.
inline serve::TcpLineServer::ValueDecoder MakeDictDecoder(
    const OpenedCube* opened) {
  return [opened](int dim, int level, uint32_t code) -> std::string {
    const etl::Dictionary& dict = opened->dictionaries[dim][level];
    if (code < dict.size()) return dict.Decode(code);
    return std::to_string(code);
  };
}

/// Serves `opened` over the TCP line protocol until stdin reaches EOF (or a
/// lone "quit" line). Shared by `cure_serve` and `cure_tool serve`.
inline int RunServeLoop(const OpenedCube* opened,
                        const serve::CubeServerOptions& server_options,
                        const serve::TcpServerOptions& tcp_options) {
  Result<std::unique_ptr<serve::CubeServer>> server =
      serve::CubeServer::Create(opened->cube.get(), server_options);
  if (!server.ok()) {
    std::fprintf(stderr, "error: %s\n", server.status().ToString().c_str());
    return 1;
  }
  Result<std::unique_ptr<serve::TcpLineServer>> tcp = serve::TcpLineServer::Start(
      server->get(), tcp_options, MakeDictDecoder(opened),
      MakeDictResolver(opened));
  if (!tcp.ok()) {
    std::fprintf(stderr, "error: %s\n", tcp.status().ToString().c_str());
    return 1;
  }
  std::printf("serving on 127.0.0.1:%d (%d workers, cache %llu bytes)\n",
              (*tcp)->port(), (*server)->options().num_threads,
              static_cast<unsigned long long>((*server)->options().cache_bytes));
  std::printf("commands: QUERY <node> | ICEBERG <node> <minsup> | "
              "SLICE <node> <level=value>... [MINSUP n] | STATS | QUIT\n");
  std::fflush(stdout);
  char line[256];
  while (std::fgets(line, sizeof(line), stdin) != nullptr) {
    if (std::string(line) == "quit\n" || std::string(line) == "quit") break;
  }
  (*tcp)->Stop();
  std::printf("--- final stats ---\n%s", (*server)->StatsText().c_str());
  return 0;
}

}  // namespace tools
}  // namespace cure

#endif  // CURE_TOOLS_TOOL_COMMON_H_
