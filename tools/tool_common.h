// Shared helpers for the command-line tools: opening a persisted cube
// directory (cube + fact relation + schema + dictionaries) and running the
// TCP serving loop used by both `cure_serve` and `cure_tool serve`.
#ifndef CURE_TOOLS_TOOL_COMMON_H_
#define CURE_TOOLS_TOOL_COMMON_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "engine/cure.h"
#include "etl/loader.h"
#include "etl/schema_io.h"
#include "maintain/live_cube.h"
#include "serve/cube_server.h"
#include "serve/tcp_server.h"
#include "storage/relation.h"

namespace cure {
namespace tools {

inline Result<std::vector<std::vector<etl::Dictionary>>> LoadDictionaries(
    const std::string& dir, const schema::CubeSchema& schema) {
  std::vector<std::vector<etl::Dictionary>> dictionaries(schema.num_dims());
  for (int d = 0; d < schema.num_dims(); ++d) {
    dictionaries[d].resize(schema.dim(d).num_levels());
    for (int l = 0; l < schema.dim(d).num_levels(); ++l) {
      const std::string path =
          dir + "/dict_" + std::to_string(d) + "_" + std::to_string(l) + ".txt";
      CURE_ASSIGN_OR_RETURN(std::string data, etl::ReadFileToString(path));
      CURE_ASSIGN_OR_RETURN(dictionaries[d][l],
                            etl::Dictionary::Deserialize(data));
    }
  }
  return dictionaries;
}

/// A persisted cube directory opened for querying: schema, fact relation,
/// the cube itself, and the per-(dim, level) string dictionaries.
struct OpenedCube {
  schema::CubeSchema schema;
  storage::Relation fact;
  std::unique_ptr<engine::CureCube> cube;
  std::vector<std::vector<etl::Dictionary>> dictionaries;
};

inline Result<std::unique_ptr<OpenedCube>> OpenCubeDir(const std::string& dir) {
  auto opened = std::make_unique<OpenedCube>();
  CURE_ASSIGN_OR_RETURN(std::string schema_text,
                        etl::ReadFileToString(dir + "/schema.txt"));
  CURE_ASSIGN_OR_RETURN(opened->schema, etl::DeserializeSchema(schema_text));
  const size_t fact_record = 4ull * opened->schema.num_dims() +
                             8ull * opened->schema.num_raw_measures();
  CURE_ASSIGN_OR_RETURN(
      opened->fact,
      storage::Relation::OpenFile(dir + "/fact.bin", fact_record));
  CURE_ASSIGN_OR_RETURN(opened->cube,
                        engine::CureCube::OpenPersisted(
                            opened->schema, dir + "/cube.bin", &opened->fact));
  CURE_ASSIGN_OR_RETURN(opened->dictionaries,
                        LoadDictionaries(dir, opened->schema));
  return opened;
}

/// The conventional WAL location inside a cube directory.
inline std::string WalPath(const std::string& dir) { return dir + "/wal.bin"; }

/// A cube directory opened for *live* serving: the fact table is loaded
/// into memory, the WAL at <dir>/wal.bin is replayed into it, and a fresh
/// in-memory cube is built — in-memory-built cubes are what the delta
/// refresh path requires (the persisted cube.bin only reopens read-only).
struct OpenedLiveCube {
  schema::CubeSchema schema;
  std::unique_ptr<maintain::LiveCube> live;
  std::vector<std::vector<etl::Dictionary>> dictionaries;
};

inline Result<std::unique_ptr<OpenedLiveCube>> OpenLiveCubeDir(
    const std::string& dir, maintain::MaintainOptions options) {
  auto opened = std::make_unique<OpenedLiveCube>();
  CURE_ASSIGN_OR_RETURN(std::string schema_text,
                        etl::ReadFileToString(dir + "/schema.txt"));
  CURE_ASSIGN_OR_RETURN(opened->schema, etl::DeserializeSchema(schema_text));
  const size_t fact_record = 4ull * opened->schema.num_dims() +
                             8ull * opened->schema.num_raw_measures();
  CURE_ASSIGN_OR_RETURN(
      storage::Relation fact,
      storage::Relation::OpenFile(dir + "/fact.bin", fact_record));
  CURE_ASSIGN_OR_RETURN(
      schema::FactTable table,
      schema::FactTable::ReadFrom(fact, opened->schema.num_dims(),
                                  opened->schema.num_raw_measures()));
  if (options.wal_path.empty()) options.wal_path = WalPath(dir);
  CURE_ASSIGN_OR_RETURN(
      opened->live,
      maintain::LiveCube::Open(opened->schema, std::move(table), options));
  CURE_ASSIGN_OR_RETURN(opened->dictionaries,
                        LoadDictionaries(dir, opened->schema));
  return opened;
}

/// Slice values like France in `country=France` resolve through the cube's
/// dictionaries. `dictionaries` must outlive the returned resolver.
inline serve::SliceValueResolver MakeDictResolver(
    const std::vector<std::vector<etl::Dictionary>>* dictionaries) {
  return [dictionaries](int dim, int level,
                        const std::string& value) -> Result<uint32_t> {
    return (*dictionaries)[dim][level].Lookup(value);
  };
}
inline serve::SliceValueResolver MakeDictResolver(const OpenedCube* opened) {
  return MakeDictResolver(&opened->dictionaries);
}

/// Row output decodes dimension codes back to their strings.
inline serve::TcpLineServer::ValueDecoder MakeDictDecoder(
    const std::vector<std::vector<etl::Dictionary>>* dictionaries) {
  return [dictionaries](int dim, int level, uint32_t code) -> std::string {
    const etl::Dictionary& dict = (*dictionaries)[dim][level];
    if (code < dict.size()) return dict.Decode(code);
    return std::to_string(code);
  };
}

/// Serves over the TCP line protocol until stdin reaches EOF (or a lone
/// "quit" line). Shared by `cure_serve` and `cure_tool serve`.
inline int RunTcpLoop(
    serve::CubeServer* server, const serve::TcpServerOptions& tcp_options,
    const std::vector<std::vector<etl::Dictionary>>* dictionaries) {
  Result<std::unique_ptr<serve::TcpLineServer>> tcp = serve::TcpLineServer::Start(
      server, tcp_options, MakeDictDecoder(dictionaries),
      MakeDictResolver(dictionaries));
  if (!tcp.ok()) {
    std::fprintf(stderr, "error: %s\n", tcp.status().ToString().c_str());
    return 1;
  }
  std::printf("serving on 127.0.0.1:%d (%d workers, cache %llu bytes%s)\n",
              (*tcp)->port(), server->options().num_threads,
              static_cast<unsigned long long>(server->options().cache_bytes),
              server->live() != nullptr ? ", live" : "");
  std::printf("commands: QUERY <node> | ICEBERG <node> <minsup> | "
              "SLICE <node> <level=value>... [MINSUP n]%s | STATS | QUIT\n",
              server->live() != nullptr ? " | APPEND <row...> | FLUSH" : "");
  std::fflush(stdout);
  char line[256];
  while (std::fgets(line, sizeof(line), stdin) != nullptr) {
    if (std::string(line) == "quit\n" || std::string(line) == "quit") break;
  }
  (*tcp)->Stop();
  std::printf("--- final stats ---\n%s", server->StatsText().c_str());
  return 0;
}

inline int RunServeLoop(const OpenedCube* opened,
                        const serve::CubeServerOptions& server_options,
                        const serve::TcpServerOptions& tcp_options) {
  Result<std::unique_ptr<serve::CubeServer>> server =
      serve::CubeServer::Create(opened->cube.get(), server_options);
  if (!server.ok()) {
    std::fprintf(stderr, "error: %s\n", server.status().ToString().c_str());
    return 1;
  }
  return RunTcpLoop(server->get(), tcp_options, &opened->dictionaries);
}

/// Live-mode serving loop: APPEND/FLUSH enabled, zero-downtime refresh.
inline int RunLiveServeLoop(OpenedLiveCube* opened,
                            const serve::CubeServerOptions& server_options,
                            const serve::TcpServerOptions& tcp_options) {
  Result<std::unique_ptr<serve::CubeServer>> server =
      serve::CubeServer::Create(opened->live.get(), server_options);
  if (!server.ok()) {
    std::fprintf(stderr, "error: %s\n", server.status().ToString().c_str());
    return 1;
  }
  const maintain::WalRecoveryStats& recovery = opened->live->wal_recovery();
  std::printf("wal: recovered %llu rows in %llu batches%s\n",
              static_cast<unsigned long long>(recovery.rows),
              static_cast<unsigned long long>(recovery.batches),
              recovery.truncated_bytes > 0 ? " (torn tail truncated)" : "");
  return RunTcpLoop(server->get(), tcp_options, &opened->dictionaries);
}

}  // namespace tools
}  // namespace cure

#endif  // CURE_TOOLS_TOOL_COMMON_H_
