// cure_router — sharded, replicated scatter–gather front end over
// cure_serve backends.
//
//   cure_router <routerdir> [--map FILE] [--shard host:port[,host:port]]...
//               [--port P] [--timeout-ms D] [--health-ms D]
//               [--hedge-ms D] [--retry-budget N] [--allow-partial]
//               [--breaker-threshold N] [--breaker-cooldown-ms D]
//               [--slow-ms D]
//
// <routerdir> is a cluster directory written by `cure_tool shard`: it holds
// schema.txt, the shared dictionaries and cluster.txt (the shard map; see
// router/shard_map.h for the format). --map overrides the map file path;
// --shard (one flag per shard, replicas comma-separated) overrides the map
// entirely — its port numbers must match the cure_serve processes serving
// <routerdir>/shard_<k>.
//
// Binds 127.0.0.1 (port 0 = ephemeral, printed on startup), speaks the same
// line protocol as cure_serve (QUERY/ICEBERG/SLICE/STATS/METRICS plus
// HEALTH), and serves until stdin closes. Each query is scattered to one
// replica per shard and the partial relations are re-aggregated; results —
// rows and the order-independent checksum — are identical to a single
// cure_serve over the unpartitioned cube. Replica pick is staleness-aware
// (STATS gauges); IOError fails over, DataLoss ejects. CURE_TRACE=1 records
// router spans sharing the trace id echoed by the backends.
//
// Fault tolerance: --hedge-ms sends a second request to another replica
// when the first is still unanswered after D ms (first answer wins);
// --retry-budget caps relaunches per shard per request; --allow-partial
// answers from the surviving shards with a "PARTIAL shards=<k>/<n>" header
// token when some shards are down (strict ERR otherwise). A client
// `deadline=<ms>` token bounds the whole request; retries spend the one
// budget. CURE_NET_FAULT=op=...;kind=... arms the deterministic network
// fault injector for chaos drills (see src/common/net_fault.h).
//
// Observability: PROFILE <cmd>... re-runs the wrapped query with profiling
// armed on every backend and answers with the cluster profile (per-shard
// attempt log + backend stage breakdowns; see DESIGN.md §17); METRICS
// cluster federates every replica's Prometheus exposition with
// shard/replica labels; --slow-ms D records queries slower than D ms into
// a bounded ring dumped by SLOWLOG.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/net_fault.h"
#include "common/trace.h"
#include "router/router.h"
#include "serve/line_transport.h"
#include "tool_common.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: cure_router <routerdir> [--map FILE] "
               "[--shard host:port[,host:port]]...\n"
               "                   [--port P] [--timeout-ms D] "
               "[--health-ms D]\n"
               "                   [--hedge-ms D] [--retry-budget N] "
               "[--allow-partial]\n"
               "                   [--breaker-threshold N] "
               "[--breaker-cooldown-ms D] [--slow-ms D]\n");
  return 2;
}

cure::Result<std::vector<cure::router::BackendAddress>> ParseReplicaList(
    const std::string& spec) {
  std::vector<cure::router::BackendAddress> replicas;
  size_t start = 0;
  while (start <= spec.size()) {
    const size_t comma = spec.find(',', start);
    const std::string one = spec.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    CURE_ASSIGN_OR_RETURN(cure::router::BackendAddress addr,
                          cure::router::ParseBackendAddress(one));
    replicas.push_back(std::move(addr));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return replicas;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  cure::Tracer::ArmFromEnv();
  const std::string dir = argv[1];
  std::string map_path = dir + "/cluster.txt";
  cure::router::ShardMap map;
  bool map_from_flags = false;
  cure::router::RouterOptions options;
  options.health_period_seconds = 2.0;  // --health-ms 0 disables
  int port = 0;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--map") == 0 && i + 1 < argc) {
      map_path = argv[++i];
    } else if (std::strcmp(argv[i], "--shard") == 0 && i + 1 < argc) {
      auto replicas = ParseReplicaList(argv[++i]);
      if (!replicas.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     replicas.status().ToString().c_str());
        return 1;
      }
      map.shards.push_back(std::move(replicas).value());
      map_from_flags = true;
    } else if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      port = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--timeout-ms") == 0 && i + 1 < argc) {
      options.backend_timeout_seconds = std::atof(argv[++i]) / 1000.0;
    } else if (std::strcmp(argv[i], "--health-ms") == 0 && i + 1 < argc) {
      options.health_period_seconds = std::atof(argv[++i]) / 1000.0;
    } else if (std::strcmp(argv[i], "--hedge-ms") == 0 && i + 1 < argc) {
      options.hedge_seconds = std::atof(argv[++i]) / 1000.0;
    } else if (std::strcmp(argv[i], "--retry-budget") == 0 && i + 1 < argc) {
      options.retry_budget = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--allow-partial") == 0) {
      options.allow_partial = true;
    } else if (std::strcmp(argv[i], "--breaker-threshold") == 0 &&
               i + 1 < argc) {
      options.breaker_failure_threshold = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--breaker-cooldown-ms") == 0 &&
               i + 1 < argc) {
      options.breaker_cooldown_seconds = std::atof(argv[++i]) / 1000.0;
    } else if (std::strcmp(argv[i], "--slow-ms") == 0 && i + 1 < argc) {
      options.slow_query_seconds = std::atof(argv[++i]) / 1000.0;
    } else {
      return Usage();
    }
  }
  if (cure::net::NetFaultInjector::ArmFromEnv()) {
    std::fprintf(stderr, "network fault injector armed from CURE_NET_FAULT\n");
  }

  cure::Result<std::string> schema_text =
      cure::etl::ReadFileToString(dir + "/schema.txt");
  if (!schema_text.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 schema_text.status().ToString().c_str());
    return 1;
  }
  cure::Result<cure::schema::CubeSchema> schema =
      cure::etl::DeserializeSchema(schema_text.value());
  if (!schema.ok()) {
    std::fprintf(stderr, "error: %s\n", schema.status().ToString().c_str());
    return 1;
  }

  if (!map_from_flags) {
    cure::Result<std::string> map_text =
        cure::etl::ReadFileToString(map_path);
    if (!map_text.ok()) {
      std::fprintf(stderr, "error: %s\n", map_text.status().ToString().c_str());
      return 1;
    }
    cure::Result<cure::router::ShardMap> parsed =
        cure::router::ShardMap::Parse(map_text.value());
    if (!parsed.ok()) {
      std::fprintf(stderr, "error: %s\n", parsed.status().ToString().c_str());
      return 1;
    }
    map = std::move(parsed).value();
  }

  // Dictionaries are optional: a cube built without string dimensions has
  // none, and codes then pass through numerically on both directions.
  cure::router::CureRouter::ValueEncoder encoder = nullptr;
  cure::router::CureRouter::ValueDecoder decoder = nullptr;
  cure::Result<std::vector<std::vector<cure::etl::Dictionary>>> dicts =
      cure::tools::LoadDictionaries(dir, schema.value());
  std::vector<std::vector<cure::etl::Dictionary>> dictionaries;
  if (dicts.ok()) {
    dictionaries = std::move(dicts).value();
    encoder = [&dictionaries](int d, int l, const std::string& value) {
      return dictionaries[d][l].Lookup(value);
    };
    decoder = [&dictionaries](int d, int l, uint32_t code) -> std::string {
      const cure::etl::Dictionary& dict = dictionaries[d][l];
      if (code < dict.size()) return dict.Decode(code);
      return std::to_string(code);
    };
  }

  cure::Result<std::unique_ptr<cure::router::CureRouter>> router =
      cure::router::CureRouter::Create(&schema.value(), std::move(map), options,
                                       std::move(encoder), std::move(decoder));
  if (!router.ok()) {
    std::fprintf(stderr, "error: %s\n", router.status().ToString().c_str());
    return 1;
  }

  cure::serve::LineTransportOptions transport_options;
  transport_options.port = port;
  cure::Result<std::unique_ptr<cure::serve::LineTransport>> transport =
      cure::serve::LineTransport::Start(
          [raw = router->get()](const std::string& line) {
            return raw->HandleLine(line);
          },
          transport_options);
  if (!transport.ok()) {
    std::fprintf(stderr, "error: %s\n", transport.status().ToString().c_str());
    return 1;
  }

  const cure::router::ShardMap& served = (*router)->shard_map();
  std::printf("routing on 127.0.0.1:%d (%d shards", (*transport)->port(),
              served.num_shards());
  for (int s = 0; s < served.num_shards(); ++s) {
    std::printf("%s%d replicas", s == 0 ? ": " : ", ", served.num_replicas(s));
  }
  std::printf(")\n");
  std::printf(
      "commands: QUERY <node> | ICEBERG <node> <minsup> | "
      "SLICE <node> <level=value>... [MINSUP n] | PROFILE <cmd>... | "
      "STATS | METRICS [cluster] | SLOWLOG | HEALTH | QUIT\n");
  std::fflush(stdout);
  char line[256];
  while (std::fgets(line, sizeof(line), stdin) != nullptr) {
    if (std::string(line) == "quit\n" || std::string(line) == "quit") break;
  }
  (*transport)->Stop();
  std::printf("--- final stats ---\n%s", (*router)->StatsText().c_str());
  return 0;
}
