// cure_serve — TCP line-protocol server over a persisted CURE cube
// directory (as written by `cure_tool build`).
//
//   cure_serve <cubedir> [--port P] [--threads N] [--cache-mb M]
//              [--no-semantic] [--semantic-min-rows N] [--max-inflight N]
//              [--deadline-ms D] [--slow-ms D] [--live] [--wal PATH]
//              [--refresh-rows N] [--refresh-ms D] [--no-delta]
//
// With --cache-mb > 0 the result cache also answers queries semantically —
// deriving them from cached results of more detailed nodes via the
// containment algebra (DESIGN.md §15); --no-semantic degrades it to the
// plain exact-key cache. --semantic-min-rows tunes the derivation cost
// gate (the engine scan estimate below which a probe is skipped); 0
// disables the gate — useful on small cubes where derivation always wins.
//
// Binds 127.0.0.1 (port 0 = ephemeral, printed on startup) and serves until
// stdin closes. Protocol: see serve/tcp_server.h.
//
// Observability: the METRICS verb returns Prometheus text exposition
// (including `# BUCKETS` histogram lines for the router's cluster
// federation); --slow-ms (or CURE_SLOW_QUERY_MS) logs queries slower than
// the threshold with a per-stage breakdown AND records them into a bounded
// ring dumped by the SLOWLOG verb; a `profile=1` request token attaches a
// "% profile ..." stage breakdown (queue wait, key, cache, execute,
// encode) to that reply; CURE_TRACE=1 + CURE_TRACE_OUT=<file>.json records
// spans for every request and writes a Chrome trace at exit.
//
// --live turns on live maintenance: the fact table is loaded into memory,
// the delta WAL (default <cubedir>/wal.bin) is replayed, a fresh cube is
// built, and the APPEND/FLUSH verbs become available. Appends are durable
// (fsynced) on OK and folded into the served cube by background refreshes
// with zero downtime. --refresh-rows/--refresh-ms tune the refresh
// triggers; --no-delta forces every refresh down the staged-rebuild path.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/trace.h"
#include "tool_common.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: cure_serve <cubedir> [--port P] [--threads N] "
               "[--cache-mb M] [--no-semantic] [--semantic-min-rows N]\n"
               "                 [--max-inflight N] [--deadline-ms D] "
               "[--slow-ms D] [--live] [--wal PATH] [--refresh-rows N] "
               "[--refresh-ms D] [--no-delta]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  cure::Tracer::ArmFromEnv();
  const std::string dir = argv[1];
  cure::serve::CubeServerOptions server_options;
  cure::serve::TcpServerOptions tcp_options;
  cure::maintain::MaintainOptions maintain_options;
  if (const char* slow_ms = std::getenv("CURE_SLOW_QUERY_MS")) {
    server_options.slow_query_seconds = std::atof(slow_ms) / 1000.0;
  }
  bool live = false;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      tcp_options.port = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      server_options.num_threads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--cache-mb") == 0 && i + 1 < argc) {
      server_options.cache_bytes = std::strtoull(argv[++i], nullptr, 10) << 20;
    } else if (std::strcmp(argv[i], "--no-semantic") == 0) {
      server_options.semantic_cache = false;
    } else if (std::strcmp(argv[i], "--semantic-min-rows") == 0 &&
               i + 1 < argc) {
      server_options.semantic_min_scan_rows =
          std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--max-inflight") == 0 && i + 1 < argc) {
      server_options.max_inflight = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0 && i + 1 < argc) {
      server_options.default_deadline_seconds = std::atof(argv[++i]) / 1000.0;
    } else if (std::strcmp(argv[i], "--slow-ms") == 0 && i + 1 < argc) {
      server_options.slow_query_seconds = std::atof(argv[++i]) / 1000.0;
    } else if (std::strcmp(argv[i], "--live") == 0) {
      live = true;
    } else if (std::strcmp(argv[i], "--wal") == 0 && i + 1 < argc) {
      maintain_options.wal_path = argv[++i];
    } else if (std::strcmp(argv[i], "--refresh-rows") == 0 && i + 1 < argc) {
      maintain_options.refresh_rows = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--refresh-ms") == 0 && i + 1 < argc) {
      maintain_options.refresh_seconds = std::atof(argv[++i]) / 1000.0;
    } else if (std::strcmp(argv[i], "--no-delta") == 0) {
      maintain_options.allow_delta = false;
    } else {
      return Usage();
    }
  }

  if (live) {
    cure::Result<std::unique_ptr<cure::tools::OpenedLiveCube>> opened =
        cure::tools::OpenLiveCubeDir(dir, maintain_options);
    if (!opened.ok()) {
      std::fprintf(stderr, "error: %s\n", opened.status().ToString().c_str());
      return 1;
    }
    return cure::tools::RunLiveServeLoop(opened->get(), server_options,
                                         tcp_options);
  }
  cure::Result<std::unique_ptr<cure::tools::OpenedCube>> opened =
      cure::tools::OpenCubeDir(dir);
  if (!opened.ok()) {
    std::fprintf(stderr, "error: %s\n", opened.status().ToString().c_str());
    return 1;
  }
  return cure::tools::RunServeLoop(opened->get(), server_options, tcp_options);
}
