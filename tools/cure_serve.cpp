// cure_serve — TCP line-protocol server over a persisted CURE cube
// directory (as written by `cure_tool build`).
//
//   cure_serve <cubedir> [--port P] [--threads N] [--cache-mb M]
//              [--max-inflight N] [--deadline-ms D]
//
// Binds 127.0.0.1 (port 0 = ephemeral, printed on startup) and serves until
// stdin closes. Protocol: see serve/tcp_server.h.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "tool_common.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: cure_serve <cubedir> [--port P] [--threads N] "
               "[--cache-mb M] [--max-inflight N] [--deadline-ms D]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string dir = argv[1];
  cure::serve::CubeServerOptions server_options;
  cure::serve::TcpServerOptions tcp_options;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      tcp_options.port = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      server_options.num_threads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--cache-mb") == 0 && i + 1 < argc) {
      server_options.cache_bytes = std::strtoull(argv[++i], nullptr, 10) << 20;
    } else if (std::strcmp(argv[i], "--max-inflight") == 0 && i + 1 < argc) {
      server_options.max_inflight = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0 && i + 1 < argc) {
      server_options.default_deadline_seconds = std::atof(argv[++i]) / 1000.0;
    } else {
      return Usage();
    }
  }

  cure::Result<std::unique_ptr<cure::tools::OpenedCube>> opened =
      cure::tools::OpenCubeDir(dir);
  if (!opened.ok()) {
    std::fprintf(stderr, "error: %s\n", opened.status().ToString().c_str());
    return 1;
  }
  return cure::tools::RunServeLoop(opened->get(), server_options, tcp_options);
}
