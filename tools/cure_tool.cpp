// cure_tool — command-line front end: build CURE cubes from CSV files and
// query them, with dictionary-encoded string dimensions and hierarchies
// inferred from roll-up columns.
//
//   cure_tool build <data.csv> <spec.txt> <outdir> [--dr] [--plus] [--minsup N]
//   cure_tool info  <outdir>
//   cure_tool query <outdir> <node> [--slice dim:level=value]... [--minsup N]
//                                          e.g.  country,category
//                                          or    city,category  or  ALL
//   cure_tool verify <outdir|cube.bin>
//   cure_tool serve <outdir> [--port P] [--threads N] [--cache-mb M]
//
// The spec file (see etl/loader.h):
//   dim region city country continent
//   dim product sku category
//   measure price
//   agg sum price
//   agg count
//
// A query names, per dimension to group by, the *level column* to group at
// (absent dimensions stay at ALL).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>

#include "common/bytes.h"
#include "common/trace.h"
#include "cube/cube_store.h"
#include "common/logging.h"
#include "engine/cure.h"
#include "etl/loader.h"
#include "etl/schema_io.h"
#include "query/node_query.h"
#include "router/backend_client.h"
#include "router/profile.h"
#include "router/shard_map.h"
#include "serve/protocol.h"
#include "storage/file_io.h"
#include "storage/relation.h"
#include "tool_common.h"

namespace {

using cure::FormatBytes;
using cure::Result;
using cure::Status;

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  cure_tool build <data.csv> <spec.txt> <outdir> [--dr] "
               "[--plus] [--minsup N] [--trace-out=<file>.json]\n"
               "  cure_tool shard <data.csv> <spec.txt> <outdir> <shards> "
               "[--replicas R] [--port-base P] [--dr] [--plus]\n"
               "  cure_tool send <host:port> [--timeout-ms D] [--retries N] "
               "<command>...\n"
               "        (one-shot line-protocol client; exit 1 on ERR, "
               "3 on transport failure)\n"
               "  cure_tool profile <host:port> [--trace-out=<file>.json] "
               "<command>...\n"
               "        (PROFILE via a router; --trace-out exports the "
               "merged cluster profile as a Chrome trace)\n"
               "  cure_tool slowlog <host:port>        (dump a server's or "
               "router's slow-query ring)\n"
               "  cure_tool info  <outdir>\n"
               "  cure_tool verify <outdir|cube.bin>   (checksum audit; exit "
               "1 on corruption)\n"
               "  cure_tool query <outdir> <level[,level...]|ALL> "
               "[--slice [dim:]level=value]... [--minsup N] "
               "[--trace-out=<file>.json]\n"
               "  cure_tool tracecheck <trace.json>    (validate a Chrome "
               "trace; exit 1 on malformed JSON)\n"
               "  cure_tool append <outdir> <dim>... <measure>...  "
               "(k rows of D+M values; dims by name or code)\n"
               "  cure_tool serve <outdir> [--port P] [--threads N] "
               "[--cache-mb M] [--max-inflight N]\n"
               "                  [--live] [--refresh-rows N] [--refresh-ms D] "
               "[--no-delta]\n");
  return 2;
}

// Matches "--trace-out=PATH" or "--trace-out PATH" at argv[*i], advancing
// *i when the path is a separate argument.
bool ParseTraceOut(int argc, char** argv, int* i, std::string* path) {
  if (std::strncmp(argv[*i], "--trace-out=", 12) == 0) {
    *path = argv[*i] + 12;
    return true;
  }
  if (std::strcmp(argv[*i], "--trace-out") == 0 && *i + 1 < argc) {
    *path = argv[++*i];
    return true;
  }
  return false;
}

// Flushes the recorded trace to `path` as Chrome trace_event JSON.
int WriteTraceOut(const std::string& path) {
  cure::Tracer& tracer = cure::Tracer::Instance();
  tracer.Disable();
  Status s = tracer.WriteChromeTrace(path);
  if (!s.ok()) return Fail(s);
  std::fprintf(stderr, "trace: %llu events -> %s (%llu dropped)\n",
               static_cast<unsigned long long>(tracer.recorded_events()),
               path.c_str(),
               static_cast<unsigned long long>(tracer.dropped_events()));
  return 0;
}

// Persists a built cube as a serveable cube directory:
// {cube.bin, fact.bin, schema.txt, dict_<d>_<l>.txt}.
Status PersistCubeDir(
    const std::string& outdir, const cure::schema::CubeSchema& schema,
    const cure::schema::FactTable& table, cure::engine::CureCube* cube,
    const std::vector<std::vector<cure::etl::Dictionary>>& dictionaries) {
  CURE_RETURN_IF_ERROR(cure::storage::EnsureDir(outdir));
  CURE_ASSIGN_OR_RETURN(cure::storage::Relation fact,
                        cure::storage::Relation::CreateFile(
                            outdir + "/fact.bin", table.RecordSize()));
  CURE_RETURN_IF_ERROR(table.WriteTo(&fact));
  CURE_RETURN_IF_ERROR(fact.Seal());
  CURE_RETURN_IF_ERROR(
      cube->mutable_store().PersistPacked(outdir + "/cube.bin"));
  CURE_RETURN_IF_ERROR(cure::etl::WriteStringToFile(
      outdir + "/schema.txt", cure::etl::SerializeSchema(schema)));
  for (size_t d = 0; d < dictionaries.size(); ++d) {
    for (size_t l = 0; l < dictionaries[d].size(); ++l) {
      const std::string path = outdir + "/dict_" + std::to_string(d) + "_" +
                               std::to_string(l) + ".txt";
      CURE_RETURN_IF_ERROR(
          cure::etl::WriteStringToFile(path, dictionaries[d][l].Serialize()));
    }
  }
  return Status::OK();
}

int RunBuild(int argc, char** argv) {
  if (argc < 5) return Usage();
  const std::string csv_path = argv[2];
  const std::string spec_path = argv[3];
  const std::string outdir = argv[4];
  cure::engine::CureOptions options;
  bool plus = false;
  std::string trace_out;
  for (int i = 5; i < argc; ++i) {
    if (std::strcmp(argv[i], "--dr") == 0) {
      options.dims_in_nt = true;
    } else if (std::strcmp(argv[i], "--plus") == 0) {
      plus = true;
    } else if (std::strcmp(argv[i], "--minsup") == 0 && i + 1 < argc) {
      options.min_support = std::strtoull(argv[++i], nullptr, 10);
    } else if (ParseTraceOut(argc, argv, &i, &trace_out)) {
      // Enable before the CSV load so cure.build.load is captured too.
      cure::Tracer::Instance().Enable();
      options.trace = true;
    } else {
      return Usage();
    }
  }

  Result<std::string> spec_text = cure::etl::ReadFileToString(spec_path);
  if (!spec_text.ok()) return Fail(spec_text.status());
  Result<cure::etl::LoadedDataset> loaded =
      cure::etl::LoadCsvFile(csv_path, *spec_text);
  if (!loaded.ok()) return Fail(loaded.status());
  std::printf("loaded %llu rows, %d dimensions, %d aggregates\n",
              static_cast<unsigned long long>(loaded->table.num_rows()),
              loaded->schema.num_dims(), loaded->schema.num_aggregates());

  cure::engine::FactInput input{.table = &loaded->table};
  Result<std::unique_ptr<cure::engine::CureCube>> cube =
      cure::engine::BuildCure(loaded->schema, input, options);
  if (!cube.ok()) return Fail(cube.status());
  if (plus) {
    Status s = cure::engine::CurePostProcess(cube->get());
    if (!s.ok()) return Fail(s);
  }
  std::printf("built cube: %.3f s, %s, TT=%llu NT=%llu CAT=%llu\n",
              (*cube)->stats().build_seconds,
              FormatBytes((*cube)->TotalBytes()).c_str(),
              static_cast<unsigned long long>((*cube)->stats().tt),
              static_cast<unsigned long long>((*cube)->stats().nt),
              static_cast<unsigned long long>((*cube)->stats().cat));

  Status s = PersistCubeDir(outdir, loaded->schema, loaded->table,
                            cube->get(), loaded->dictionaries);
  if (!s.ok()) return Fail(s);
  std::printf("wrote %s/{cube.bin, fact.bin, schema.txt, dictionaries}\n",
              outdir.c_str());
  if (!trace_out.empty()) return WriteTraceOut(trace_out);
  return 0;
}

// Builds a sharded cluster directory: the CSV is loaded ONCE (one dictionary
// set, so codes are consistent across every shard), the fact rows are split
// into <shards> contiguous disjoint ranges, and a complete cube is built per
// range into <outdir>/shard_<k>/ — each a full cube directory cure_serve can
// open. The top level gets the shared schema.txt + dictionaries (cure_router
// re-encodes rows through them) and cluster.txt, a shard-map template whose
// ports start at --port-base (edit it, or pass --shard to cure_router, to
// match the actual backend ports).
//
// Deliberately no --minsup: iceberg thresholds must be applied after the
// router's merge, so every shard cube is complete.
int RunShard(int argc, char** argv) {
  if (argc < 6) return Usage();
  const std::string csv_path = argv[2];
  const std::string spec_path = argv[3];
  const std::string outdir = argv[4];
  const int num_shards = std::atoi(argv[5]);
  if (num_shards < 1) {
    return Fail(Status::InvalidArgument("shard count must be >= 1"));
  }
  int replicas = 1;
  int port_base = 7101;
  cure::engine::CureOptions options;
  bool plus = false;
  for (int i = 6; i < argc; ++i) {
    if (std::strcmp(argv[i], "--replicas") == 0 && i + 1 < argc) {
      replicas = std::atoi(argv[++i]);
      if (replicas < 1) {
        return Fail(Status::InvalidArgument("--replicas must be >= 1"));
      }
    } else if (std::strcmp(argv[i], "--port-base") == 0 && i + 1 < argc) {
      port_base = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--dr") == 0) {
      options.dims_in_nt = true;
    } else if (std::strcmp(argv[i], "--plus") == 0) {
      plus = true;
    } else {
      return Usage();
    }
  }

  Result<std::string> spec_text = cure::etl::ReadFileToString(spec_path);
  if (!spec_text.ok()) return Fail(spec_text.status());
  Result<cure::etl::LoadedDataset> loaded =
      cure::etl::LoadCsvFile(csv_path, *spec_text);
  if (!loaded.ok()) return Fail(loaded.status());
  const uint64_t total_rows = loaded->table.num_rows();
  if (total_rows < static_cast<uint64_t>(num_shards)) {
    return Fail(Status::InvalidArgument(
        "cannot split " + std::to_string(total_rows) + " rows into " +
        std::to_string(num_shards) + " shards"));
  }
  std::printf("loaded %llu rows; sharding into %d partitions\n",
              static_cast<unsigned long long>(total_rows), num_shards);

  Status s = cure::storage::EnsureDir(outdir);
  if (!s.ok()) return Fail(s);

  const int num_dims = loaded->schema.num_dims();
  const int num_measures = loaded->schema.num_raw_measures();
  std::vector<uint32_t> dims(num_dims);
  std::vector<int64_t> measures(num_measures);
  for (int k = 0; k < num_shards; ++k) {
    const uint64_t begin = total_rows * k / num_shards;
    const uint64_t end = total_rows * (k + 1) / num_shards;
    cure::schema::FactTable part(num_dims, num_measures);
    part.Reserve(end - begin);
    for (uint64_t row = begin; row < end; ++row) {
      for (int d = 0; d < num_dims; ++d) dims[d] = loaded->table.dim(d, row);
      for (int m = 0; m < num_measures; ++m) {
        measures[m] = loaded->table.measure(m, row);
      }
      part.AppendRow(dims.data(), measures.data());
    }
    cure::engine::FactInput input{.table = &part};
    Result<std::unique_ptr<cure::engine::CureCube>> cube =
        cure::engine::BuildCure(loaded->schema, input, options);
    if (!cube.ok()) return Fail(cube.status());
    if (plus) {
      if (!(s = cure::engine::CurePostProcess(cube->get())).ok()) {
        return Fail(s);
      }
    }
    const std::string shard_dir = outdir + "/shard_" + std::to_string(k);
    s = PersistCubeDir(shard_dir, loaded->schema, part, cube->get(),
                       loaded->dictionaries);
    if (!s.ok()) return Fail(s);
    std::printf("shard %d: rows [%llu, %llu) -> %s (%s)\n", k,
                static_cast<unsigned long long>(begin),
                static_cast<unsigned long long>(end), shard_dir.c_str(),
                FormatBytes((*cube)->TotalBytes()).c_str());
  }

  // Top-level: the router's schema + dictionaries + shard-map template.
  if (!(s = cure::etl::WriteStringToFile(
            outdir + "/schema.txt",
            cure::etl::SerializeSchema(loaded->schema)))
           .ok()) {
    return Fail(s);
  }
  for (size_t d = 0; d < loaded->dictionaries.size(); ++d) {
    for (size_t l = 0; l < loaded->dictionaries[d].size(); ++l) {
      const std::string path = outdir + "/dict_" + std::to_string(d) + "_" +
                               std::to_string(l) + ".txt";
      if (!(s = cure::etl::WriteStringToFile(
                path, loaded->dictionaries[d][l].Serialize()))
               .ok()) {
        return Fail(s);
      }
    }
  }
  cure::router::ShardMap map;
  map.shards.resize(num_shards);
  for (int k = 0; k < num_shards; ++k) {
    for (int r = 0; r < replicas; ++r) {
      map.shards[k].push_back(
          {.host = "127.0.0.1", .port = port_base + k * replicas + r});
    }
  }
  if (!(s = cure::etl::WriteStringToFile(outdir + "/cluster.txt",
                                         map.Serialize()))
           .ok()) {
    return Fail(s);
  }
  std::printf("wrote %s/{schema.txt, dictionaries, cluster.txt} + %d shard "
              "dirs (%d replicas each from port %d)\n",
              outdir.c_str(), num_shards, replicas, port_base);
  return 0;
}

// One-shot line-protocol client: sends one command to a cure_serve or
// cure_router endpoint and prints the response body. Exit codes separate
// the failure domains so scripts can branch on them: 0 = OK response,
// 1 = server-side ERR response, 2 = usage, 3 = transport failure
// (connect/send/recv, after --retries attempts). --timeout-ms bounds each
// socket op; --retries re-sends on transport failures only (an ERR came
// from a live server and would repeat).
int RunSend(int argc, char** argv) {
  double timeout_seconds = 30.0;
  int retries = 0;
  std::string endpoint;
  std::string line;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--timeout-ms") == 0 && i + 1 < argc) {
      timeout_seconds = std::atof(argv[++i]) / 1000.0;
      continue;
    }
    if (std::strcmp(argv[i], "--retries") == 0 && i + 1 < argc) {
      retries = std::atoi(argv[++i]);
      continue;
    }
    if (endpoint.empty()) {
      endpoint = argv[i];
      continue;
    }
    if (!line.empty()) line += ' ';
    line += argv[i];
  }
  if (endpoint.empty() || line.empty()) return Usage();
  Result<cure::router::BackendAddress> addr =
      cure::router::ParseBackendAddress(endpoint);
  if (!addr.ok()) {
    Fail(addr.status());
    return 3;
  }
  cure::router::BackendClient client(timeout_seconds);
  Result<std::string> response = client.RoundTrip(*addr, line);
  for (int attempt = 0; !response.ok() && attempt < retries; ++attempt) {
    response = client.RoundTrip(*addr, line);
  }
  if (!response.ok()) {
    Fail(response.status());
    return 3;
  }
  std::fputs(response->c_str(), stdout);
  return response->rfind("ERR", 0) == 0 ? 1 : 0;
}

// PROFILE client: sends `PROFILE <command>...` to a router, prints the
// cluster profile, and optionally converts it into a Chrome trace whose
// per-backend tracks are aligned to the router's attempt timeline.
int RunProfile(int argc, char** argv) {
  double timeout_seconds = 30.0;
  std::string trace_out;
  std::string endpoint;
  std::string line = "PROFILE";
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--timeout-ms") == 0 && i + 1 < argc) {
      timeout_seconds = std::atof(argv[++i]) / 1000.0;
      continue;
    }
    if (ParseTraceOut(argc, argv, &i, &trace_out)) continue;
    if (endpoint.empty()) {
      endpoint = argv[i];
      continue;
    }
    line += ' ';
    line += argv[i];
  }
  if (endpoint.empty() || line == "PROFILE") return Usage();
  Result<cure::router::BackendAddress> addr =
      cure::router::ParseBackendAddress(endpoint);
  if (!addr.ok()) {
    Fail(addr.status());
    return 3;
  }
  cure::router::BackendClient client(timeout_seconds);
  Result<std::string> response = client.RoundTrip(*addr, line);
  if (!response.ok()) {
    Fail(response.status());
    return 3;
  }
  std::fputs(response->c_str(), stdout);
  if (response->rfind("ERR", 0) == 0) return 1;
  if (!trace_out.empty()) {
    cure::router::ClusterProfile profile;
    if (!cure::router::ParseClusterProfile(*response, &profile)) {
      return Fail(Status::InvalidArgument(
          "response carries no cluster profile (is " + endpoint +
          " a cure_router?)"));
    }
    Status written = cure::etl::WriteStringToFile(
        trace_out, cure::router::ClusterProfileToChromeTrace(profile));
    if (!written.ok()) return Fail(written);
    std::fprintf(stderr, "cluster trace: %d shards -> %s\n",
                 profile.shards_total, trace_out.c_str());
  }
  return 0;
}

// SLOWLOG client: dumps a cure_serve or cure_router slow-query ring.
int RunSlowlog(int argc, char** argv) {
  if (argc < 3) return Usage();
  Result<cure::router::BackendAddress> addr =
      cure::router::ParseBackendAddress(argv[2]);
  if (!addr.ok()) {
    Fail(addr.status());
    return 3;
  }
  cure::router::BackendClient client(30.0);
  Result<std::string> response = client.RoundTrip(*addr, "SLOWLOG");
  if (!response.ok()) {
    Fail(response.status());
    return 3;
  }
  std::fputs(response->c_str(), stdout);
  return response->rfind("ERR", 0) == 0 ? 1 : 0;
}

using cure::tools::OpenCubeDir;
using cure::tools::OpenedCube;

int RunInfo(int argc, char** argv) {
  if (argc < 3) return Usage();
  Result<std::unique_ptr<OpenedCube>> opened = OpenCubeDir(argv[2]);
  if (!opened.ok()) return Fail(opened.status());
  const cure::engine::CureCube& cube = *(*opened)->cube;
  const cure::schema::CubeSchema& schema = (*opened)->schema;
  std::printf("fact rows:   %llu\n",
              static_cast<unsigned long long>((*opened)->fact.num_rows()));
  std::printf("cube size:   %s in %llu relations\n",
              FormatBytes(cube.TotalBytes()).c_str(),
              static_cast<unsigned long long>(cube.store().NumRelations()));
  std::printf("tuples:      TT=%llu NT=%llu CAT=%llu (AGGREGATES rows: %llu)\n",
              static_cast<unsigned long long>(cube.stats().tt),
              static_cast<unsigned long long>(cube.stats().nt),
              static_cast<unsigned long long>(cube.stats().cat),
              static_cast<unsigned long long>(cube.stats().aggregates_rows));
  std::printf("lattice:     %llu nodes\n",
              static_cast<unsigned long long>(cube.store().codec().num_nodes()));
  for (int d = 0; d < schema.num_dims(); ++d) {
    std::printf("dimension %s:", schema.dim(d).name().c_str());
    for (int l = 0; l < schema.dim(d).num_levels(); ++l) {
      std::printf(" %s(%u)", schema.dim(d).level(l).name.c_str(),
                  schema.dim(d).cardinality(l));
    }
    std::printf("\n");
  }
  return 0;
}

int RunVerify(int argc, char** argv) {
  if (argc < 3) return Usage();
  std::string path = argv[2];
  std::error_code ec;
  if (std::filesystem::is_directory(path, ec)) path += "/cube.bin";

  const cure::cube::CubeStore::PackedVerifyReport report =
      cure::cube::CubeStore::VerifyPacked(path);
  std::printf("file:        %s (%s)\n", path.c_str(),
              FormatBytes(report.file_size).c_str());
  std::printf("format:      v%u\n", report.version);
  std::printf("manifest:    %s\n", report.manifest_ok ? "OK" : "CORRUPT");
  uint64_t bad = 0;
  for (const auto& section : report.sections) {
    char id[32];
    if (section.node_id == ~0ull) {
      std::snprintf(id, sizeof(id), "-");
    } else {
      std::snprintf(id, sizeof(id), "%llu",
                    static_cast<unsigned long long>(section.node_id));
    }
    std::printf("  section node=%-8s %-10s rows=%-10llu %-10s @%-12llu %s\n",
                id, section.kind.c_str(),
                static_cast<unsigned long long>(section.rows),
                FormatBytes(section.bytes).c_str(),
                static_cast<unsigned long long>(section.offset),
                section.checksum_ok ? "OK" : "CORRUPT");
    if (!section.checksum_ok) ++bad;
  }
  if (!report.status.ok()) {
    std::fprintf(stderr, "verify FAILED: %s\n",
                 report.status.ToString().c_str());
    return 1;
  }
  std::printf("verify OK: %llu sections, %llu corrupt\n",
              static_cast<unsigned long long>(report.sections.size()),
              static_cast<unsigned long long>(bad));
  return 0;
}

int RunQuery(int argc, char** argv) {
  if (argc < 4) return Usage();
  Result<std::unique_ptr<OpenedCube>> opened = OpenCubeDir(argv[2]);
  if (!opened.ok()) return Fail(opened.status());
  const cure::schema::CubeSchema& schema = (*opened)->schema;
  const cure::schema::NodeIdCodec& codec = (*opened)->cube->store().codec();

  Result<cure::schema::NodeId> node =
      cure::serve::ParseNodeSpec(schema, codec, argv[3]);
  if (!node.ok()) return Fail(node.status());

  // Optional slice predicates and iceberg threshold.
  std::vector<cure::query::CureQueryEngine::Slice> slices;
  int64_t min_count = 0;
  std::string trace_out;
  const cure::serve::SliceValueResolver resolver =
      cure::tools::MakeDictResolver(opened->get());
  for (int i = 4; i < argc; ++i) {
    if (std::strcmp(argv[i], "--slice") == 0 && i + 1 < argc) {
      Result<cure::query::CureQueryEngine::Slice> slice =
          cure::serve::ParseSliceSpec(schema, argv[++i], resolver);
      if (!slice.ok()) return Fail(slice.status());
      slices.push_back(*slice);
    } else if (std::strcmp(argv[i], "--minsup") == 0 && i + 1 < argc) {
      min_count = std::strtoll(argv[++i], nullptr, 10);
    } else if (ParseTraceOut(argc, argv, &i, &trace_out)) {
      cure::Tracer::Instance().Enable();
    } else {
      return Usage();
    }
  }
  int count_aggregate = -1;
  if (min_count > 1) {
    for (int y = 0; y < schema.num_aggregates(); ++y) {
      if (schema.aggregate(y).fn == cure::schema::AggFn::kCount) {
        count_aggregate = y;
        break;
      }
    }
    if (count_aggregate < 0) {
      return Fail(Status::InvalidArgument(
          "--minsup requires a COUNT aggregate in the schema"));
    }
  }

  const std::vector<int> levels = codec.Decode(*node);
  std::vector<int> grouped_dims;
  for (int d = 0; d < schema.num_dims(); ++d) {
    if (levels[d] != codec.all_level(d)) grouped_dims.push_back(d);
  }

  Result<std::unique_ptr<cure::query::CureQueryEngine>> engine =
      cure::query::CureQueryEngine::Create((*opened)->cube.get(), 1.0);
  if (!engine.ok()) return Fail(engine.status());
  cure::query::ResultSink sink(/*retain=*/true);
  Status s;
  {
    CURE_TRACE_SPAN("cure.query.execute", "node", *node);
    s = (*engine)->QueryNodeSlicedIceberg(*node, slices, count_aggregate,
                                          min_count, &sink);
  }
  if (!s.ok()) return Fail(s);

  // Header.
  for (int d : grouped_dims) {
    std::printf("%s\t", schema.dim(d).level(levels[d]).name.c_str());
  }
  for (int y = 0; y < schema.num_aggregates(); ++y) {
    std::printf("%s\t", schema.aggregate(y).name.c_str());
  }
  std::printf("\n");
  for (const auto& row : sink.rows()) {
    for (size_t i = 0; i < grouped_dims.size(); ++i) {
      const int d = grouped_dims[i];
      std::printf("%s\t",
                  (*opened)->dictionaries[d][levels[d]].Decode(row.dims[i]).c_str());
    }
    for (int64_t a : row.aggrs) std::printf("%lld\t", static_cast<long long>(a));
    std::printf("\n");
  }
  std::fprintf(stderr, "(%llu rows)\n",
               static_cast<unsigned long long>(sink.count()));
  if (!trace_out.empty()) return WriteTraceOut(trace_out);
  return 0;
}

// Validates a Chrome trace_event JSON file (our own exporter's output, or
// any externally produced trace) and prints what it contains. Exit 1 on
// malformed input — CI runs this on the smoke-test trace.
int RunTraceCheck(int argc, char** argv) {
  if (argc < 3) return Usage();
  cure::ChromeTraceSummary summary;
  Status s = cure::ValidateChromeTraceFile(argv[2], &summary);
  if (!s.ok()) {
    std::fprintf(stderr, "tracecheck FAILED: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("tracecheck OK: %llu events (%llu spans, %llu counters, "
              "%llu instants), %llu distinct names\n",
              static_cast<unsigned long long>(summary.total_events),
              static_cast<unsigned long long>(summary.complete_events),
              static_cast<unsigned long long>(summary.counter_events),
              static_cast<unsigned long long>(summary.instant_events),
              static_cast<unsigned long long>(summary.names.size()));
  for (const std::string& name : summary.names) {
    const size_t spans = summary.CompleteCount(name);
    if (spans > 0) {
      std::printf("  %-40s x%llu\n", name.c_str(),
                  static_cast<unsigned long long>(spans));
    } else {
      std::printf("  %s\n", name.c_str());
    }
  }
  return 0;
}

// Appends rows to a cube directory's delta WAL *offline* — no cube build,
// no server. The rows become durable immediately and are folded in by the
// next live serve session (WAL replay at open) or refresh. Dimension values
// resolve through the leaf-level dictionary; numeric codes also work.
int RunAppend(int argc, char** argv) {
  if (argc < 4) return Usage();
  const std::string dir = argv[2];
  Result<std::string> schema_text = cure::etl::ReadFileToString(dir + "/schema.txt");
  if (!schema_text.ok()) return Fail(schema_text.status());
  Result<cure::schema::CubeSchema> schema =
      cure::etl::DeserializeSchema(*schema_text);
  if (!schema.ok()) return Fail(schema.status());
  Result<std::vector<std::vector<cure::etl::Dictionary>>> dictionaries =
      cure::tools::LoadDictionaries(dir, *schema);
  if (!dictionaries.ok()) return Fail(dictionaries.status());

  const int num_dims = schema->num_dims();
  const int num_measures = schema->num_raw_measures();
  const int width = num_dims + num_measures;
  const int num_values = argc - 3;
  if (num_values % width != 0) {
    return Fail(Status::InvalidArgument(
        "append takes k*" + std::to_string(width) + " values (" +
        std::to_string(num_dims) + " dims then " + std::to_string(num_measures) +
        " measures per row), got " + std::to_string(num_values)));
  }

  cure::maintain::RowBatch batch(num_dims, num_measures);
  std::vector<uint32_t> dims(num_dims);
  std::vector<int64_t> measures(num_measures);
  int arg = 3;
  for (int row = 0; row < num_values / width; ++row) {
    for (int d = 0; d < num_dims; ++d, ++arg) {
      const std::string value = argv[arg];
      Result<uint32_t> code = (*dictionaries)[d][0].Lookup(value);
      if (!code.ok()) {  // Not a dictionary word: accept a numeric leaf code.
        char* end = nullptr;
        const unsigned long long numeric = std::strtoull(value.c_str(), &end, 10);
        if (end == value.c_str() || *end != '\0') return Fail(code.status());
        code = static_cast<uint32_t>(numeric);
      }
      if (*code >= schema->dim(d).leaf_cardinality()) {
        return Fail(Status::OutOfRange(
            "leaf code " + std::to_string(*code) + " out of range for '" +
            schema->dim(d).name() + "'"));
      }
      dims[d] = *code;
    }
    for (int m = 0; m < num_measures; ++m, ++arg) {
      measures[m] = std::strtoll(argv[arg], nullptr, 10);
    }
    batch.Add(dims.data(), measures.data());
  }

  Result<std::unique_ptr<cure::maintain::DeltaWal>> wal =
      cure::maintain::DeltaWal::Open(cure::tools::WalPath(dir), num_dims,
                                     num_measures, nullptr);
  if (!wal.ok()) return Fail(wal.status());
  Status s = (*wal)->AppendBatch(batch);
  if (!s.ok()) return Fail(s);
  std::printf("appended %llu rows (WAL now %llu rows, %s)\n",
              static_cast<unsigned long long>(batch.rows()),
              static_cast<unsigned long long>((*wal)->total_rows()),
              FormatBytes((*wal)->file_bytes()).c_str());
  return 0;
}

int RunServe(int argc, char** argv) {
  if (argc < 3) return Usage();
  cure::serve::CubeServerOptions server_options;
  cure::serve::TcpServerOptions tcp_options;
  cure::maintain::MaintainOptions maintain_options;
  bool live = false;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      tcp_options.port = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      server_options.num_threads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--cache-mb") == 0 && i + 1 < argc) {
      server_options.cache_bytes = std::strtoull(argv[++i], nullptr, 10) << 20;
    } else if (std::strcmp(argv[i], "--max-inflight") == 0 && i + 1 < argc) {
      server_options.max_inflight = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--slow-ms") == 0 && i + 1 < argc) {
      server_options.slow_query_seconds = std::atof(argv[++i]) / 1000.0;
    } else if (std::strcmp(argv[i], "--live") == 0) {
      live = true;
    } else if (std::strcmp(argv[i], "--refresh-rows") == 0 && i + 1 < argc) {
      maintain_options.refresh_rows = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--refresh-ms") == 0 && i + 1 < argc) {
      maintain_options.refresh_seconds = std::atof(argv[++i]) / 1000.0;
    } else if (std::strcmp(argv[i], "--no-delta") == 0) {
      maintain_options.allow_delta = false;
    } else {
      return Usage();
    }
  }
  if (live) {
    Result<std::unique_ptr<cure::tools::OpenedLiveCube>> opened =
        cure::tools::OpenLiveCubeDir(argv[2], maintain_options);
    if (!opened.ok()) return Fail(opened.status());
    return cure::tools::RunLiveServeLoop(opened->get(), server_options,
                                         tcp_options);
  }
  Result<std::unique_ptr<OpenedCube>> opened = OpenCubeDir(argv[2]);
  if (!opened.ok()) return Fail(opened.status());
  return cure::tools::RunServeLoop(opened->get(), server_options, tcp_options);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  // CURE_TRACE=1 (+ CURE_TRACE_OUT=<file>) traces any subcommand, including
  // serve, without touching its flags.
  cure::Tracer::ArmFromEnv();
  if (std::strcmp(argv[1], "build") == 0) return RunBuild(argc, argv);
  if (std::strcmp(argv[1], "shard") == 0) return RunShard(argc, argv);
  if (std::strcmp(argv[1], "send") == 0) return RunSend(argc, argv);
  if (std::strcmp(argv[1], "profile") == 0) return RunProfile(argc, argv);
  if (std::strcmp(argv[1], "slowlog") == 0) return RunSlowlog(argc, argv);
  if (std::strcmp(argv[1], "info") == 0) return RunInfo(argc, argv);
  if (std::strcmp(argv[1], "verify") == 0) return RunVerify(argc, argv);
  if (std::strcmp(argv[1], "query") == 0) return RunQuery(argc, argv);
  if (std::strcmp(argv[1], "append") == 0) return RunAppend(argc, argv);
  if (std::strcmp(argv[1], "serve") == 0) return RunServe(argc, argv);
  if (std::strcmp(argv[1], "tracecheck") == 0) return RunTraceCheck(argc, argv);
  return Usage();
}
