// cure_tool — command-line front end: build CURE cubes from CSV files and
// query them, with dictionary-encoded string dimensions and hierarchies
// inferred from roll-up columns.
//
//   cure_tool build <data.csv> <spec.txt> <outdir> [--dr] [--plus] [--minsup N]
//   cure_tool info  <outdir>
//   cure_tool query <outdir> <node>        e.g.  country,category
//                                          or    city,category  or  ALL
//
// The spec file (see etl/loader.h):
//   dim region city country continent
//   dim product sku category
//   measure price
//   agg sum price
//   agg count
//
// A query names, per dimension to group by, the *level column* to group at
// (absent dimensions stay at ALL).

#include <cstdio>
#include <cstring>
#include <string>

#include "common/bytes.h"
#include "common/logging.h"
#include "engine/cure.h"
#include "etl/loader.h"
#include "etl/schema_io.h"
#include "query/node_query.h"
#include "storage/file_io.h"
#include "storage/relation.h"

namespace {

using cure::FormatBytes;
using cure::Result;
using cure::Status;

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  cure_tool build <data.csv> <spec.txt> <outdir> [--dr] "
               "[--plus] [--minsup N]\n"
               "  cure_tool info  <outdir>\n"
               "  cure_tool query <outdir> <level[,level...]|ALL>\n");
  return 2;
}

int RunBuild(int argc, char** argv) {
  if (argc < 5) return Usage();
  const std::string csv_path = argv[2];
  const std::string spec_path = argv[3];
  const std::string outdir = argv[4];
  cure::engine::CureOptions options;
  bool plus = false;
  for (int i = 5; i < argc; ++i) {
    if (std::strcmp(argv[i], "--dr") == 0) {
      options.dims_in_nt = true;
    } else if (std::strcmp(argv[i], "--plus") == 0) {
      plus = true;
    } else if (std::strcmp(argv[i], "--minsup") == 0 && i + 1 < argc) {
      options.min_support = std::strtoull(argv[++i], nullptr, 10);
    } else {
      return Usage();
    }
  }

  Result<std::string> spec_text = cure::etl::ReadFileToString(spec_path);
  if (!spec_text.ok()) return Fail(spec_text.status());
  Result<cure::etl::LoadedDataset> loaded =
      cure::etl::LoadCsvFile(csv_path, *spec_text);
  if (!loaded.ok()) return Fail(loaded.status());
  std::printf("loaded %llu rows, %d dimensions, %d aggregates\n",
              static_cast<unsigned long long>(loaded->table.num_rows()),
              loaded->schema.num_dims(), loaded->schema.num_aggregates());

  cure::engine::FactInput input{.table = &loaded->table};
  Result<std::unique_ptr<cure::engine::CureCube>> cube =
      cure::engine::BuildCure(loaded->schema, input, options);
  if (!cube.ok()) return Fail(cube.status());
  if (plus) {
    Status s = cure::engine::CurePostProcess(cube->get());
    if (!s.ok()) return Fail(s);
  }
  std::printf("built cube: %.3f s, %s, TT=%llu NT=%llu CAT=%llu\n",
              (*cube)->stats().build_seconds,
              FormatBytes((*cube)->TotalBytes()).c_str(),
              static_cast<unsigned long long>((*cube)->stats().tt),
              static_cast<unsigned long long>((*cube)->stats().nt),
              static_cast<unsigned long long>((*cube)->stats().cat));

  Status s = cure::storage::EnsureDir(outdir);
  if (!s.ok()) return Fail(s);
  // Fact table in binary relation form.
  Result<cure::storage::Relation> fact = cure::storage::Relation::CreateFile(
      outdir + "/fact.bin", loaded->table.RecordSize());
  if (!fact.ok()) return Fail(fact.status());
  if (!(s = loaded->table.WriteTo(&fact.value())).ok()) return Fail(s);
  if (!(s = fact->Seal()).ok()) return Fail(s);
  // Packed cube, schema, dictionaries.
  if (!(s = (*cube)->mutable_store().PersistPacked(outdir + "/cube.bin")).ok()) {
    return Fail(s);
  }
  if (!(s = cure::etl::WriteStringToFile(
            outdir + "/schema.txt",
            cure::etl::SerializeSchema(loaded->schema)))
           .ok()) {
    return Fail(s);
  }
  for (size_t d = 0; d < loaded->dictionaries.size(); ++d) {
    for (size_t l = 0; l < loaded->dictionaries[d].size(); ++l) {
      const std::string path = outdir + "/dict_" + std::to_string(d) + "_" +
                               std::to_string(l) + ".txt";
      if (!(s = cure::etl::WriteStringToFile(
                path, loaded->dictionaries[d][l].Serialize()))
               .ok()) {
        return Fail(s);
      }
    }
  }
  std::printf("wrote %s/{cube.bin, fact.bin, schema.txt, dictionaries}\n",
              outdir.c_str());
  return 0;
}

struct OpenedCube {
  cure::schema::CubeSchema schema;
  cure::storage::Relation fact;
  std::unique_ptr<cure::engine::CureCube> cube;
  std::vector<std::vector<cure::etl::Dictionary>> dictionaries;
};

Result<std::unique_ptr<OpenedCube>> OpenCubeDir(const std::string& dir) {
  auto opened = std::make_unique<OpenedCube>();
  CURE_ASSIGN_OR_RETURN(std::string schema_text,
                        cure::etl::ReadFileToString(dir + "/schema.txt"));
  CURE_ASSIGN_OR_RETURN(opened->schema,
                        cure::etl::DeserializeSchema(schema_text));
  const size_t fact_record = 4ull * opened->schema.num_dims() +
                             8ull * opened->schema.num_raw_measures();
  CURE_ASSIGN_OR_RETURN(
      opened->fact,
      cure::storage::Relation::OpenFile(dir + "/fact.bin", fact_record));
  CURE_ASSIGN_OR_RETURN(opened->cube,
                        cure::engine::CureCube::OpenPersisted(
                            opened->schema, dir + "/cube.bin", &opened->fact));
  opened->dictionaries.resize(opened->schema.num_dims());
  for (int d = 0; d < opened->schema.num_dims(); ++d) {
    opened->dictionaries[d].resize(opened->schema.dim(d).num_levels());
    for (int l = 0; l < opened->schema.dim(d).num_levels(); ++l) {
      const std::string path =
          dir + "/dict_" + std::to_string(d) + "_" + std::to_string(l) + ".txt";
      CURE_ASSIGN_OR_RETURN(std::string data, cure::etl::ReadFileToString(path));
      CURE_ASSIGN_OR_RETURN(opened->dictionaries[d][l],
                            cure::etl::Dictionary::Deserialize(data));
    }
  }
  return opened;
}

int RunInfo(int argc, char** argv) {
  if (argc < 3) return Usage();
  Result<std::unique_ptr<OpenedCube>> opened = OpenCubeDir(argv[2]);
  if (!opened.ok()) return Fail(opened.status());
  const cure::engine::CureCube& cube = *(*opened)->cube;
  const cure::schema::CubeSchema& schema = (*opened)->schema;
  std::printf("fact rows:   %llu\n",
              static_cast<unsigned long long>((*opened)->fact.num_rows()));
  std::printf("cube size:   %s in %llu relations\n",
              FormatBytes(cube.TotalBytes()).c_str(),
              static_cast<unsigned long long>(cube.store().NumRelations()));
  std::printf("tuples:      TT=%llu NT=%llu CAT=%llu (AGGREGATES rows: %llu)\n",
              static_cast<unsigned long long>(cube.stats().tt),
              static_cast<unsigned long long>(cube.stats().nt),
              static_cast<unsigned long long>(cube.stats().cat),
              static_cast<unsigned long long>(cube.stats().aggregates_rows));
  std::printf("lattice:     %llu nodes\n",
              static_cast<unsigned long long>(cube.store().codec().num_nodes()));
  for (int d = 0; d < schema.num_dims(); ++d) {
    std::printf("dimension %s:", schema.dim(d).name().c_str());
    for (int l = 0; l < schema.dim(d).num_levels(); ++l) {
      std::printf(" %s(%u)", schema.dim(d).level(l).name.c_str(),
                  schema.dim(d).cardinality(l));
    }
    std::printf("\n");
  }
  return 0;
}

int RunQuery(int argc, char** argv) {
  if (argc < 4) return Usage();
  Result<std::unique_ptr<OpenedCube>> opened = OpenCubeDir(argv[2]);
  if (!opened.ok()) return Fail(opened.status());
  const cure::schema::CubeSchema& schema = (*opened)->schema;
  const cure::schema::NodeIdCodec& codec = (*opened)->cube->store().codec();

  // Parse the node: comma-separated level-column names (or "ALL").
  std::vector<int> levels(schema.num_dims());
  for (int d = 0; d < schema.num_dims(); ++d) levels[d] = codec.all_level(d);
  std::vector<int> grouped_dims;
  const std::string node_text = argv[3];
  if (node_text != "ALL") {
    size_t start = 0;
    while (start <= node_text.size()) {
      size_t end = node_text.find(',', start);
      if (end == std::string::npos) end = node_text.size();
      const std::string level_name = node_text.substr(start, end - start);
      start = end + 1;
      if (level_name.empty()) continue;
      bool found = false;
      for (int d = 0; d < schema.num_dims() && !found; ++d) {
        for (int l = 0; l < schema.dim(d).num_levels(); ++l) {
          if (schema.dim(d).level(l).name == level_name) {
            levels[d] = l;
            found = true;
            break;
          }
        }
      }
      if (!found) {
        std::fprintf(stderr, "error: no hierarchy level named '%s'\n",
                     level_name.c_str());
        return 1;
      }
      if (start > node_text.size()) break;
    }
  }
  for (int d = 0; d < schema.num_dims(); ++d) {
    if (levels[d] != codec.all_level(d)) grouped_dims.push_back(d);
  }

  Result<std::unique_ptr<cure::query::CureQueryEngine>> engine =
      cure::query::CureQueryEngine::Create((*opened)->cube.get(), 1.0);
  if (!engine.ok()) return Fail(engine.status());
  cure::query::ResultSink sink(/*retain=*/true);
  Status s = (*engine)->QueryNode(codec.Encode(levels), &sink);
  if (!s.ok()) return Fail(s);

  // Header.
  for (int d : grouped_dims) {
    std::printf("%s\t", schema.dim(d).level(levels[d]).name.c_str());
  }
  for (int y = 0; y < schema.num_aggregates(); ++y) {
    std::printf("%s\t", schema.aggregate(y).name.c_str());
  }
  std::printf("\n");
  for (const auto& row : sink.rows()) {
    for (size_t i = 0; i < grouped_dims.size(); ++i) {
      const int d = grouped_dims[i];
      std::printf("%s\t",
                  (*opened)->dictionaries[d][levels[d]].Decode(row.dims[i]).c_str());
    }
    for (int64_t a : row.aggrs) std::printf("%lld\t", static_cast<long long>(a));
    std::printf("\n");
  }
  std::fprintf(stderr, "(%llu rows)\n",
               static_cast<unsigned long long>(sink.count()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  if (std::strcmp(argv[1], "build") == 0) return RunBuild(argc, argv);
  if (std::strcmp(argv[1], "info") == 0) return RunInfo(argc, argv);
  if (std::strcmp(argv[1], "query") == 0) return RunQuery(argc, argv);
  return Usage();
}
