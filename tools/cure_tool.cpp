// cure_tool — command-line front end: build CURE cubes from CSV files and
// query them, with dictionary-encoded string dimensions and hierarchies
// inferred from roll-up columns.
//
//   cure_tool build <data.csv> <spec.txt> <outdir> [--dr] [--plus] [--minsup N]
//   cure_tool info  <outdir>
//   cure_tool query <outdir> <node> [--slice dim:level=value]... [--minsup N]
//                                          e.g.  country,category
//                                          or    city,category  or  ALL
//   cure_tool serve <outdir> [--port P] [--threads N] [--cache-mb M]
//
// The spec file (see etl/loader.h):
//   dim region city country continent
//   dim product sku category
//   measure price
//   agg sum price
//   agg count
//
// A query names, per dimension to group by, the *level column* to group at
// (absent dimensions stay at ALL).

#include <cstdio>
#include <cstring>
#include <string>

#include "common/bytes.h"
#include "common/logging.h"
#include "engine/cure.h"
#include "etl/loader.h"
#include "etl/schema_io.h"
#include "query/node_query.h"
#include "serve/protocol.h"
#include "storage/file_io.h"
#include "storage/relation.h"
#include "tool_common.h"

namespace {

using cure::FormatBytes;
using cure::Result;
using cure::Status;

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  cure_tool build <data.csv> <spec.txt> <outdir> [--dr] "
               "[--plus] [--minsup N]\n"
               "  cure_tool info  <outdir>\n"
               "  cure_tool query <outdir> <level[,level...]|ALL> "
               "[--slice [dim:]level=value]... [--minsup N]\n"
               "  cure_tool serve <outdir> [--port P] [--threads N] "
               "[--cache-mb M] [--max-inflight N]\n");
  return 2;
}

int RunBuild(int argc, char** argv) {
  if (argc < 5) return Usage();
  const std::string csv_path = argv[2];
  const std::string spec_path = argv[3];
  const std::string outdir = argv[4];
  cure::engine::CureOptions options;
  bool plus = false;
  for (int i = 5; i < argc; ++i) {
    if (std::strcmp(argv[i], "--dr") == 0) {
      options.dims_in_nt = true;
    } else if (std::strcmp(argv[i], "--plus") == 0) {
      plus = true;
    } else if (std::strcmp(argv[i], "--minsup") == 0 && i + 1 < argc) {
      options.min_support = std::strtoull(argv[++i], nullptr, 10);
    } else {
      return Usage();
    }
  }

  Result<std::string> spec_text = cure::etl::ReadFileToString(spec_path);
  if (!spec_text.ok()) return Fail(spec_text.status());
  Result<cure::etl::LoadedDataset> loaded =
      cure::etl::LoadCsvFile(csv_path, *spec_text);
  if (!loaded.ok()) return Fail(loaded.status());
  std::printf("loaded %llu rows, %d dimensions, %d aggregates\n",
              static_cast<unsigned long long>(loaded->table.num_rows()),
              loaded->schema.num_dims(), loaded->schema.num_aggregates());

  cure::engine::FactInput input{.table = &loaded->table};
  Result<std::unique_ptr<cure::engine::CureCube>> cube =
      cure::engine::BuildCure(loaded->schema, input, options);
  if (!cube.ok()) return Fail(cube.status());
  if (plus) {
    Status s = cure::engine::CurePostProcess(cube->get());
    if (!s.ok()) return Fail(s);
  }
  std::printf("built cube: %.3f s, %s, TT=%llu NT=%llu CAT=%llu\n",
              (*cube)->stats().build_seconds,
              FormatBytes((*cube)->TotalBytes()).c_str(),
              static_cast<unsigned long long>((*cube)->stats().tt),
              static_cast<unsigned long long>((*cube)->stats().nt),
              static_cast<unsigned long long>((*cube)->stats().cat));

  Status s = cure::storage::EnsureDir(outdir);
  if (!s.ok()) return Fail(s);
  // Fact table in binary relation form.
  Result<cure::storage::Relation> fact = cure::storage::Relation::CreateFile(
      outdir + "/fact.bin", loaded->table.RecordSize());
  if (!fact.ok()) return Fail(fact.status());
  if (!(s = loaded->table.WriteTo(&fact.value())).ok()) return Fail(s);
  if (!(s = fact->Seal()).ok()) return Fail(s);
  // Packed cube, schema, dictionaries.
  if (!(s = (*cube)->mutable_store().PersistPacked(outdir + "/cube.bin")).ok()) {
    return Fail(s);
  }
  if (!(s = cure::etl::WriteStringToFile(
            outdir + "/schema.txt",
            cure::etl::SerializeSchema(loaded->schema)))
           .ok()) {
    return Fail(s);
  }
  for (size_t d = 0; d < loaded->dictionaries.size(); ++d) {
    for (size_t l = 0; l < loaded->dictionaries[d].size(); ++l) {
      const std::string path = outdir + "/dict_" + std::to_string(d) + "_" +
                               std::to_string(l) + ".txt";
      if (!(s = cure::etl::WriteStringToFile(
                path, loaded->dictionaries[d][l].Serialize()))
               .ok()) {
        return Fail(s);
      }
    }
  }
  std::printf("wrote %s/{cube.bin, fact.bin, schema.txt, dictionaries}\n",
              outdir.c_str());
  return 0;
}

using cure::tools::OpenCubeDir;
using cure::tools::OpenedCube;

int RunInfo(int argc, char** argv) {
  if (argc < 3) return Usage();
  Result<std::unique_ptr<OpenedCube>> opened = OpenCubeDir(argv[2]);
  if (!opened.ok()) return Fail(opened.status());
  const cure::engine::CureCube& cube = *(*opened)->cube;
  const cure::schema::CubeSchema& schema = (*opened)->schema;
  std::printf("fact rows:   %llu\n",
              static_cast<unsigned long long>((*opened)->fact.num_rows()));
  std::printf("cube size:   %s in %llu relations\n",
              FormatBytes(cube.TotalBytes()).c_str(),
              static_cast<unsigned long long>(cube.store().NumRelations()));
  std::printf("tuples:      TT=%llu NT=%llu CAT=%llu (AGGREGATES rows: %llu)\n",
              static_cast<unsigned long long>(cube.stats().tt),
              static_cast<unsigned long long>(cube.stats().nt),
              static_cast<unsigned long long>(cube.stats().cat),
              static_cast<unsigned long long>(cube.stats().aggregates_rows));
  std::printf("lattice:     %llu nodes\n",
              static_cast<unsigned long long>(cube.store().codec().num_nodes()));
  for (int d = 0; d < schema.num_dims(); ++d) {
    std::printf("dimension %s:", schema.dim(d).name().c_str());
    for (int l = 0; l < schema.dim(d).num_levels(); ++l) {
      std::printf(" %s(%u)", schema.dim(d).level(l).name.c_str(),
                  schema.dim(d).cardinality(l));
    }
    std::printf("\n");
  }
  return 0;
}

int RunQuery(int argc, char** argv) {
  if (argc < 4) return Usage();
  Result<std::unique_ptr<OpenedCube>> opened = OpenCubeDir(argv[2]);
  if (!opened.ok()) return Fail(opened.status());
  const cure::schema::CubeSchema& schema = (*opened)->schema;
  const cure::schema::NodeIdCodec& codec = (*opened)->cube->store().codec();

  Result<cure::schema::NodeId> node =
      cure::serve::ParseNodeSpec(schema, codec, argv[3]);
  if (!node.ok()) return Fail(node.status());

  // Optional slice predicates and iceberg threshold.
  std::vector<cure::query::CureQueryEngine::Slice> slices;
  int64_t min_count = 0;
  const cure::serve::SliceValueResolver resolver =
      cure::tools::MakeDictResolver(opened->get());
  for (int i = 4; i < argc; ++i) {
    if (std::strcmp(argv[i], "--slice") == 0 && i + 1 < argc) {
      Result<cure::query::CureQueryEngine::Slice> slice =
          cure::serve::ParseSliceSpec(schema, argv[++i], resolver);
      if (!slice.ok()) return Fail(slice.status());
      slices.push_back(*slice);
    } else if (std::strcmp(argv[i], "--minsup") == 0 && i + 1 < argc) {
      min_count = std::strtoll(argv[++i], nullptr, 10);
    } else {
      return Usage();
    }
  }
  int count_aggregate = -1;
  if (min_count > 1) {
    for (int y = 0; y < schema.num_aggregates(); ++y) {
      if (schema.aggregate(y).fn == cure::schema::AggFn::kCount) {
        count_aggregate = y;
        break;
      }
    }
    if (count_aggregate < 0) {
      return Fail(Status::InvalidArgument(
          "--minsup requires a COUNT aggregate in the schema"));
    }
  }

  const std::vector<int> levels = codec.Decode(*node);
  std::vector<int> grouped_dims;
  for (int d = 0; d < schema.num_dims(); ++d) {
    if (levels[d] != codec.all_level(d)) grouped_dims.push_back(d);
  }

  Result<std::unique_ptr<cure::query::CureQueryEngine>> engine =
      cure::query::CureQueryEngine::Create((*opened)->cube.get(), 1.0);
  if (!engine.ok()) return Fail(engine.status());
  cure::query::ResultSink sink(/*retain=*/true);
  Status s = (*engine)->QueryNodeSlicedIceberg(*node, slices, count_aggregate,
                                               min_count, &sink);
  if (!s.ok()) return Fail(s);

  // Header.
  for (int d : grouped_dims) {
    std::printf("%s\t", schema.dim(d).level(levels[d]).name.c_str());
  }
  for (int y = 0; y < schema.num_aggregates(); ++y) {
    std::printf("%s\t", schema.aggregate(y).name.c_str());
  }
  std::printf("\n");
  for (const auto& row : sink.rows()) {
    for (size_t i = 0; i < grouped_dims.size(); ++i) {
      const int d = grouped_dims[i];
      std::printf("%s\t",
                  (*opened)->dictionaries[d][levels[d]].Decode(row.dims[i]).c_str());
    }
    for (int64_t a : row.aggrs) std::printf("%lld\t", static_cast<long long>(a));
    std::printf("\n");
  }
  std::fprintf(stderr, "(%llu rows)\n",
               static_cast<unsigned long long>(sink.count()));
  return 0;
}

int RunServe(int argc, char** argv) {
  if (argc < 3) return Usage();
  cure::serve::CubeServerOptions server_options;
  cure::serve::TcpServerOptions tcp_options;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      tcp_options.port = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      server_options.num_threads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--cache-mb") == 0 && i + 1 < argc) {
      server_options.cache_bytes = std::strtoull(argv[++i], nullptr, 10) << 20;
    } else if (std::strcmp(argv[i], "--max-inflight") == 0 && i + 1 < argc) {
      server_options.max_inflight = std::atoi(argv[++i]);
    } else {
      return Usage();
    }
  }
  Result<std::unique_ptr<OpenedCube>> opened = OpenCubeDir(argv[2]);
  if (!opened.ok()) return Fail(opened.status());
  return cure::tools::RunServeLoop(opened->get(), server_options, tcp_options);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  if (std::strcmp(argv[1], "build") == 0) return RunBuild(argc, argv);
  if (std::strcmp(argv[1], "info") == 0) return RunInfo(argc, argv);
  if (std::strcmp(argv[1], "query") == 0) return RunQuery(argc, argv);
  if (std::strcmp(argv[1], "serve") == 0) return RunServe(argc, argv);
  return Usage();
}
